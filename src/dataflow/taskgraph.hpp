// Coarse-grained task graphs for dynamically controlled accelerators.
//
// "The HERMES project use cases include applications based on artificial
// intelligence, which might contain multiple parallel execution flows (i.e.,
// coarse-grained parallelism); when synthesized through an HLS tool, the
// complexity of the finite state machine controllers for such applications
// grows exponentially ... Bambu has been extended to efficiently synthesize
// dynamically controlled accelerators" (HERMES, Sec. II; ref [14]).
//
// A TaskGraph is a set of tasks connected by FIFO channels. Each task is an
// accelerator kernel with a latency and initiation interval (taken from a
// synthesized FlowResult, or given directly for modelling). Two controller
// styles are compared:
//   * dynamically controlled: each task has its own small FSM plus
//     token handshakes — simulated by the discrete-event engine below;
//   * monolithic/centralized FSM: one controller tracks every flow —
//     estimated analytically (serialized states, or the product-state
//     construction for true concurrency, which is the exponential blow-up).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "fault/injector.hpp"
#include "fdir/event.hpp"
#include "hls/flow.hpp"

namespace hermes::df {

struct Task {
  std::string name;
  std::uint64_t latency = 1;   ///< cycles per firing
  std::uint64_t ii = 0;        ///< initiation interval; 0 = not pipelined (=latency)
  unsigned fsm_states = 1;     ///< controller states of the task alone
  std::size_t luts = 0;        ///< datapath resource estimate
  /// Survives degraded mode. Non-critical tasks (diagnostics, best-effort
  /// post-processing) are shed by shed_non_critical() when the FDIR
  /// supervisor degrades the mission.
  bool critical = true;
  [[nodiscard]] std::uint64_t initiation() const { return ii ? ii : latency; }
};

/// Builds a Task profile from a synthesized kernel: latency measured by
/// co-simulation would be input-dependent, so the FSM state count and
/// netlist stats are used with the given measured latency.
Task task_from_flow(const hls::FlowResult& flow, std::uint64_t measured_latency);

struct Channel {
  std::size_t from = 0, to = 0;
  std::size_t capacity = 2;  ///< FIFO depth (tokens)
};

struct TaskGraph {
  std::vector<Task> tasks;
  std::vector<Channel> channels;
  std::vector<std::size_t> sources;  ///< tasks fed by external input tokens
  std::vector<std::size_t> sinks;    ///< tasks producing external outputs

  std::size_t add_task(Task task) {
    tasks.push_back(std::move(task));
    return tasks.size() - 1;
  }
  void connect(std::size_t from, std::size_t to, std::size_t capacity = 2) {
    channels.push_back({from, to, capacity});
  }
};

/// Discrete-event simulation of the dynamically controlled accelerator:
/// tasks fire when every input channel holds a token and every output
/// channel has space; a firing consumes one token per input, occupies the
/// task for `latency`, emits one token per output; a pipelined task can
/// re-fire after its initiation interval.
struct DataflowStats {
  std::uint64_t makespan = 0;        ///< cycles to drain all tokens
  std::uint64_t tokens_processed = 0;
  double avg_utilization = 0.0;      ///< busy-cycle fraction across tasks
  std::uint64_t controller_states = 0;  ///< sum of per-task FSMs + handshakes
  std::size_t luts = 0;              ///< datapath + per-task controllers
  std::uint64_t node_retries = 0;    ///< transient firings re-executed
  std::uint64_t node_failures = 0;   ///< firings whose retry budget ran out
  std::vector<std::uint64_t> retries_per_task;  ///< indexed by task id
};

/// Per-node re-execution policy, mirroring the AXI master's retry ladder:
/// a transient failure (is_retriable) gets up to `max_retries` bounded
/// re-executions with exponential backoff (`backoff_cycles << attempt`);
/// permanent failures propagate immediately.
struct NodeRetryPolicy {
  unsigned max_retries = 3;
  std::uint64_t backoff_cycles = 4;
};

struct DataflowOptions {
  std::uint64_t max_cycles = 50'000'000;
  NodeRetryPolicy retry;
  /// When set, every firing completion presents one opportunity to each of
  /// the df.node.{transient,overrun,permanent} points.
  fault::FaultInjector* injector = nullptr;
  /// When set, stats are written here even if the simulation fails — the
  /// retry/failure counters of an aborted run are still meaningful.
  DataflowStats* stats_out = nullptr;
  /// When set, the node retry ladder publishes FDIR events (kRetried per
  /// re-execution, kExhausted on budget exhaustion, kUncorrectable for
  /// permanent faults), stamped with the simulation cycle and carrying the
  /// task id in `detail`.
  fdir::FdirBus* fdir = nullptr;
};

Result<DataflowStats> simulate_dataflow(const TaskGraph& graph,
                                        std::uint64_t input_tokens,
                                        const DataflowOptions& options);

Result<DataflowStats> simulate_dataflow(const TaskGraph& graph,
                                        std::uint64_t input_tokens,
                                        std::uint64_t max_cycles = 50'000'000);

/// Analytic model of the same graph under a single centralized FSM.
struct MonolithicStats {
  std::uint64_t serialized_states = 0;  ///< one flow at a time: sum of states
  std::uint64_t serialized_latency = 0; ///< per input token
  double product_states = 0.0;          ///< concurrent tracking: state product
                                        ///< across parallel branches (the
                                        ///< exponential term), as double —
                                        ///< it overflows integers quickly
  std::size_t luts = 0;                 ///< datapath + centralized controller
};

MonolithicStats estimate_monolithic(const TaskGraph& graph);

/// Degraded-mode work shedding: the subgraph of critical tasks, with task
/// indices remapped and every channel touching a shed task dropped. Shed
/// subgraphs must be leaf branches (a critical task must never consume from
/// a non-critical producer, or it starves); callers keep the critical
/// pipeline closed source-to-sink. Shedding a sink reduces the output-token
/// demand accordingly.
TaskGraph shed_non_critical(const TaskGraph& graph);

}  // namespace hermes::df
