#include "dataflow/taskgraph.hpp"

#include <algorithm>
#include <deque>
#include <queue>
#include <set>

#include "common/backoff.hpp"
#include "common/bits.hpp"
#include "common/strings.hpp"

namespace hermes::df {

Task task_from_flow(const hls::FlowResult& flow, std::uint64_t measured_latency) {
  Task task;
  task.name = flow.function.name();
  task.latency = measured_latency == 0 ? 1 : measured_latency;
  task.fsm_states = flow.fsm_states;
  task.luts = 0;
  const hw::NetlistStats stats = flow.fsmd.module.stats();
  // Rough datapath LUT estimate: arithmetic cells dominate; muxes and
  // registers contribute fractions.
  task.luts = stats.arithmetic * 40 + stats.muxes * 8 + stats.register_bits / 2;
  return task;
}

Result<DataflowStats> simulate_dataflow(const TaskGraph& graph,
                                        std::uint64_t input_tokens,
                                        const DataflowOptions& options) {
  const std::size_t n = graph.tasks.size();
  if (n == 0) {
    return Status::Error(ErrorCode::kInvalidArgument, "empty task graph");
  }

  // Node fault points: one opportunity each per firing completion, in a
  // fixed order (permanent, transient, overrun) so a plan's firing pattern
  // is independent of simulation timing.
  fault::FaultInjector* injector = options.injector;
  fault::PointId pt_permanent = fault::kNoFaultPoint;
  fault::PointId pt_transient = fault::kNoFaultPoint;
  fault::PointId pt_overrun = fault::kNoFaultPoint;
  if (injector) {
    pt_permanent = injector->register_point("df.node.permanent");
    pt_transient = injector->register_point("df.node.transient");
    pt_overrun = injector->register_point("df.node.overrun");
  }

  std::vector<std::size_t> occupancy(graph.channels.size(), 0);
  std::vector<std::vector<std::size_t>> in_channels(n), out_channels(n);
  for (std::size_t c = 0; c < graph.channels.size(); ++c) {
    in_channels[graph.channels[c].to].push_back(c);
    out_channels[graph.channels[c].from].push_back(c);
  }

  std::vector<std::uint64_t> pending_inputs(n, 0);
  for (std::size_t s : graph.sources) pending_inputs[s] = input_tokens;

  // Per-task state: firings in flight (completion cycle), next allowed start.
  struct Firing {
    std::uint64_t completes_at;
    std::size_t task;
    unsigned attempt;
  };
  auto cmp = [](const Firing& a, const Firing& b) {
    return a.completes_at > b.completes_at;
  };
  std::priority_queue<Firing, std::vector<Firing>, decltype(cmp)> in_flight(cmp);
  std::vector<std::uint64_t> next_start(n, 0);
  std::vector<std::uint64_t> busy_cycles(n, 0);
  std::vector<std::uint64_t> outputs_remaining(n, 0);
  for (std::size_t s : graph.sinks) outputs_remaining[s] = input_tokens;

  DataflowStats stats;
  stats.retries_per_task.assign(n, 0);
  std::uint64_t now = 0;
  const std::uint64_t sink_tokens_needed =
      static_cast<std::uint64_t>(graph.sinks.size()) * input_tokens;
  std::uint64_t sink_tokens_done = 0;

  const auto finish = [&](Status status) -> Result<DataflowStats> {
    stats.makespan = now;
    if (options.stats_out) *options.stats_out = stats;
    return status;
  };

  auto can_fire = [&](std::size_t t) {
    if (now < next_start[t]) return false;
    const bool is_source =
        std::find(graph.sources.begin(), graph.sources.end(), t) !=
        graph.sources.end();
    if (is_source) {
      if (pending_inputs[t] == 0 && in_channels[t].empty()) return false;
      if (pending_inputs[t] == 0 && !in_channels[t].empty()) {
        // A source with internal inputs still needs them.
      } else if (pending_inputs[t] == 0) {
        return false;
      }
    }
    for (std::size_t c : in_channels[t]) {
      if (occupancy[c] == 0) return false;
    }
    if (!is_source && in_channels[t].empty()) return false;  // starved
    for (std::size_t c : out_channels[t]) {
      if (occupancy[c] >= graph.channels[c].capacity) return false;
    }
    return true;
  };

  auto fire = [&](std::size_t t) {
    const bool is_source =
        std::find(graph.sources.begin(), graph.sources.end(), t) !=
        graph.sources.end();
    if (is_source && pending_inputs[t] > 0) --pending_inputs[t];
    for (std::size_t c : in_channels[t]) --occupancy[c];
    in_flight.push({now + graph.tasks[t].latency, t, 0});
    next_start[t] = now + graph.tasks[t].initiation();
    busy_cycles[t] += graph.tasks[t].latency;
  };

  // Handles one completed firing: applies injected node faults, walks the
  // retry ladder (bounded re-execution with input re-read for retriable
  // codes, immediate propagation for permanent ones), and on success emits
  // the output tokens.
  auto complete = [&](const Firing& firing) -> Status {
    const std::size_t t = firing.task;
    Status fault = Status::Ok();
    if (injector) {
      if (injector->should_fire(pt_permanent)) {
        fault = Status::Error(
            ErrorCode::kInvalidArgument,
            format("node %zu (%s): permanent fault (bad operand)", t,
                   graph.tasks[t].name.c_str()));
      } else if (injector->should_fire(pt_transient)) {
        fault = Status::Error(ErrorCode::kInternal,
                              format("node %zu (%s): transient execution fault",
                                     t, graph.tasks[t].name.c_str()));
      } else if (injector->should_fire(pt_overrun)) {
        fault = Status::Error(
            ErrorCode::kDeadlineExceeded,
            format("node %zu (%s): firing overran its budget", t,
                   graph.tasks[t].name.c_str()));
      }
    }
    if (!fault.ok()) {
      if (is_retriable(fault.code()) &&
          firing.attempt < options.retry.max_retries) {
        // Re-execute: the inputs were re-read from the retained tokens, the
        // task is busy for another latency after an exponential backoff.
        ++stats.node_retries;
        ++stats.retries_per_task[t];
        if (options.fdir) {
          options.fdir->publish({fdir::Layer::kDataflow,
                                 fdir::Severity::kRetried, fault.code(),
                                 static_cast<std::uint32_t>(t), now});
        }
        const std::uint64_t backoff =
            backoff_cycles(options.retry.backoff_cycles, firing.attempt);
        busy_cycles[t] += graph.tasks[t].latency;
        in_flight.push(
            {now + backoff + graph.tasks[t].latency, t, firing.attempt + 1});
        return Status::Ok();
      }
      ++stats.node_failures;
      if (options.fdir) {
        options.fdir->publish({fdir::Layer::kDataflow,
                               is_retriable(fault.code())
                                   ? fdir::Severity::kExhausted
                                   : fdir::Severity::kUncorrectable,
                               fault.code(), static_cast<std::uint32_t>(t),
                               now});
      }
      return fault;  // permanent, or retry budget exhausted: original code
    }
    for (std::size_t c : out_channels[t]) ++occupancy[c];
    if (std::find(graph.sinks.begin(), graph.sinks.end(), t) !=
        graph.sinks.end()) {
      ++sink_tokens_done;
    }
    return Status::Ok();
  };

  while (sink_tokens_done < sink_tokens_needed) {
    if (now > options.max_cycles) {
      return finish(Status::Error(
          ErrorCode::kDeadlineExceeded,
          format("dataflow simulation exceeded %llu cycles",
                 static_cast<unsigned long long>(options.max_cycles))));
    }
    // Fire everything ready at `now`.
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t t = 0; t < n; ++t) {
        if (can_fire(t)) {
          fire(t);
          progress = true;
        }
      }
    }
    // Advance to the next completion.
    if (in_flight.empty()) {
      return finish(Status::Error(ErrorCode::kInternal,
                                  "dataflow deadlock: no firings in flight"));
    }
    const Firing firing = in_flight.top();
    in_flight.pop();
    now = std::max(now, firing.completes_at);
    Status status = complete(firing);
    if (!status.ok()) return finish(std::move(status));
    // Drain all completions at the same instant.
    while (!in_flight.empty() && in_flight.top().completes_at == now) {
      const Firing other = in_flight.top();
      in_flight.pop();
      status = complete(other);
      if (!status.ok()) return finish(std::move(status));
    }
  }

  stats.makespan = now;
  stats.tokens_processed = input_tokens;
  double utilization = 0;
  for (std::size_t t = 0; t < n; ++t) {
    utilization += now ? static_cast<double>(busy_cycles[t]) / now : 0.0;
  }
  stats.avg_utilization = n ? utilization / n : 0.0;
  // Dynamically controlled: each task keeps its own FSM plus a 2-state
  // handshake wrapper per channel endpoint.
  for (const Task& task : graph.tasks) {
    stats.controller_states += task.fsm_states;
    stats.luts += task.luts + task.fsm_states / 2;  // one-hot-ish controller
  }
  stats.controller_states += 2 * graph.channels.size();
  stats.luts += 16 * graph.channels.size();  // FIFO control + flags
  if (options.stats_out) *options.stats_out = stats;
  return stats;
}

Result<DataflowStats> simulate_dataflow(const TaskGraph& graph,
                                        std::uint64_t input_tokens,
                                        std::uint64_t max_cycles) {
  DataflowOptions options;
  options.max_cycles = max_cycles;
  return simulate_dataflow(graph, input_tokens, options);
}

TaskGraph shed_non_critical(const TaskGraph& graph) {
  TaskGraph shed;
  std::vector<std::size_t> remap(graph.tasks.size(), SIZE_MAX);
  for (std::size_t t = 0; t < graph.tasks.size(); ++t) {
    if (!graph.tasks[t].critical) continue;
    remap[t] = shed.tasks.size();
    shed.tasks.push_back(graph.tasks[t]);
  }
  for (const Channel& channel : graph.channels) {
    if (remap[channel.from] == SIZE_MAX || remap[channel.to] == SIZE_MAX) {
      continue;  // touches a shed task
    }
    shed.channels.push_back(
        {remap[channel.from], remap[channel.to], channel.capacity});
  }
  for (std::size_t s : graph.sources) {
    if (remap[s] != SIZE_MAX) shed.sources.push_back(remap[s]);
  }
  for (std::size_t s : graph.sinks) {
    if (remap[s] != SIZE_MAX) shed.sinks.push_back(remap[s]);
  }
  return shed;
}

MonolithicStats estimate_monolithic(const TaskGraph& graph) {
  MonolithicStats stats;
  // Serialized: one centralized FSM runs each task region in sequence.
  for (const Task& task : graph.tasks) {
    stats.serialized_states += task.fsm_states;
    stats.serialized_latency += task.latency;
    stats.luts += task.luts;
  }
  // Centralized controller cost grows with the state count (next-state
  // logic over a flat encoding).
  stats.luts += stats.serialized_states * 2;

  // Concurrent tracking: identify parallel branches (tasks with no path
  // between them) — the controller must represent the cross product of the
  // branch sub-FSMs. We approximate branches as the tasks grouped by their
  // topological "lane": any two tasks not ordered by reachability multiply.
  const std::size_t n = graph.tasks.size();
  std::vector<std::set<std::size_t>> reach(n);
  for (std::size_t t = 0; t < n; ++t) reach[t].insert(t);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Channel& channel : graph.channels) {
      for (std::size_t r : reach[channel.to]) {
        if (reach[channel.from].insert(r).second) changed = true;
      }
    }
  }
  auto ordered = [&](std::size_t a, std::size_t b) {
    return reach[a].count(b) || reach[b].count(a);
  };
  // Greedy antichain cover: each antichain member multiplies the product.
  std::vector<bool> used(n, false);
  double product = 1.0;
  for (std::size_t t = 0; t < n; ++t) {
    if (used[t]) continue;
    double branch_states = graph.tasks[t].fsm_states;
    used[t] = true;
    for (std::size_t other = t + 1; other < n; ++other) {
      if (!used[other] && !ordered(t, other)) {
        // Concurrent with t: contributes multiplicatively.
        product *= static_cast<double>(graph.tasks[other].fsm_states);
        used[other] = true;
      }
    }
    product *= branch_states;
  }
  stats.product_states = product;
  return stats;
}

}  // namespace hermes::df
