// Quickstart: C kernel -> Bambu-style HLS -> cycle-accurate co-simulation ->
// Verilog + NXmap backend (bitstream, timing, power) in ~60 lines of API.
//
//   $ ./quickstart
//
// This walks the exact flow of the paper's Fig. 2 + Fig. 3 on a small
// saturating-accumulate kernel.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "hls/eucalyptus.hpp"
#include "hls/flow.hpp"
#include "hls/testbench.hpp"
#include "nxmap/flow.hpp"

int main() {
  using namespace hermes;

  // 1. The input: a plain C kernel (the "well-known software language"
  //    entry point of the HLS flow).
  const char* source = R"(
    int saturating_dot(const int16_t a[32], const int16_t b[32]) {
      int acc = 0;
      for (int i = 0; i < 32; i = i + 1) {
        acc = acc + (int)a[i] * (int)b[i];
        if (acc > 1000000) { acc = 1000000; }
        if (acc < -1000000) { acc = -1000000; }
      }
      return acc;
    }
  )";

  // 2. Run the full HLS flow for the NG-ULTRA target at a 10 ns clock.
  hls::FlowOptions options;
  options.top = "saturating_dot";
  options.constraints.clock_period_ns = 10.0;
  auto flow = hls::run_flow(source, options);
  if (!flow.ok()) {
    std::fprintf(stderr, "HLS failed: %s\n", flow.status().to_string().c_str());
    return 1;
  }
  std::printf("%s\n", hls::flow_report(flow.value()).c_str());

  // 3. Verify: co-simulate the generated accelerator against the golden
  //    software model (this is what the generated testbench does).
  std::vector<std::uint64_t> a(32), b(32);
  for (int i = 0; i < 32; ++i) {
    a[i] = static_cast<std::uint64_t>(i * 3);
    b[i] = static_cast<std::uint64_t>(100 - i);
  }
  auto cosim = hls::cosimulate(flow.value(), {}, {{0, a}, {1, b}});
  if (!cosim.ok() || !cosim.value().match) {
    std::fprintf(stderr, "co-simulation mismatch!\n");
    return 1;
  }
  std::printf("co-simulation: MATCH, result=%lld in %llu accelerator cycles "
              "(%llu software ops)\n\n",
              static_cast<long long>(
                  static_cast<std::int32_t>(cosim.value().return_value)),
              static_cast<unsigned long long>(cosim.value().hw_cycles),
              static_cast<unsigned long long>(cosim.value().sw_instructions));

  // 4. Inspect the generated Verilog (first lines).
  const std::string& verilog = flow.value().verilog;
  std::printf("generated Verilog: %zu bytes; preview:\n", verilog.size());
  std::size_t shown = 0, lines = 0;
  while (shown < verilog.size() && lines < 6) {
    const std::size_t eol = verilog.find('\n', shown);
    std::printf("  %.*s\n", static_cast<int>(eol - shown), verilog.data() + shown);
    shown = eol + 1;
    ++lines;
  }

  // 5. NXmap backend: map, place, route, STA, bitstream for NG-ULTRA.
  const nx::NxDevice device = nx::make_device(hls::ng_ultra());
  nx::BackendOptions backend_options;
  backend_options.target_period_ns = 10.0;
  auto backend = nx::run_backend(flow.value().fsmd.module, device,
                                 backend_options);
  if (!backend.ok()) {
    std::fprintf(stderr, "backend failed: %s\n",
                 backend.status().to_string().c_str());
    return 1;
  }
  std::printf("\n%s", nx::backend_report(backend.value(), device).c_str());

  // 6. Dump the flow artifacts the real toolchain would hand over:
  //    generated Verilog, the Eucalyptus library XML, and the bitstream.
  const std::filesystem::path dir = "hermes_artifacts";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (!ec) {
    std::ofstream(dir / "saturating_dot.v") << verilog;
    const hls::TechLibrary lib(hls::ng_ultra());
    std::ofstream(dir / "ng_ultra_library.xml")
        << hls::to_xml(lib.target(), hls::run_sweep(lib, {}));
    std::ofstream(dir / "saturating_dot.nxb", std::ios::binary)
        .write(reinterpret_cast<const char*>(backend.value().bitstream.data()),
               static_cast<std::streamsize>(backend.value().bitstream.size()));
    std::printf("\nartifacts written to %s/: saturating_dot.v, "
                "ng_ultra_library.xml, saturating_dot.nxb\n",
                dir.string().c_str());
  }
  return 0;
}
