// Hypervisor use case (paper Sec. V, SELENE-derived): AOCS + Visual-Based
// Navigation + Electrical Orbit Raising running as XtratuM partitions on the
// quad-core R52 under a cyclic plan, exchanging data over sampling ports.
//
// Prints a 20-second mission timeline: attitude convergence, navigation
// fixes, orbit-raising progress, and the hypervisor's TSP accounting.
#include <cstdio>
#include <memory>

#include "apps/aocs.hpp"
#include "apps/eor.hpp"
#include "apps/vbn.hpp"
#include "common/rng.hpp"
#include "hv/hypervisor.hpp"

int main() {
  using namespace hermes;
  using namespace hermes::hv;

  struct Mission {
    apps::AocsState aocs;
    apps::AocsConfig aocs_config;
    apps::EorState eor;
    apps::EorConfig eor_config;
    Rng rng{2026};
    std::uint64_t vbn_fixes = 0, vbn_frames = 0;
  };
  auto mission = std::make_shared<Mission>();
  mission->aocs.attitude_error = {apps::fx_from_milli(300),
                                  apps::fx_from_milli(-200),
                                  apps::fx_from_milli(120)};

  HvConfig config;
  config.plan.major_frame = 100'000;  // 100 ms MAF
  config.plan.per_core.assign(kNumCores, {});
  config.plan.per_core[0] = {{0, 20'000, 0, 0}, {20'000, 75'000, 1, 0}};
  config.plan.per_core[1] = {{0, 95'000, 1, 1}};
  config.plan.per_core[2] = {{0, 60'000, 2, 0}};

  PartitionConfig aocs;
  aocs.name = "AOCS";
  aocs.region = {0x00000, 0x10000};
  aocs.profile = {100'000, 20'000, 4'000};
  aocs.on_job = [mission](PartitionApi& api) {
    apps::aocs_step(mission->aocs, mission->aocs_config);
    Message att(4);
    const auto err = static_cast<std::uint32_t>(
        apps::fx_abs(mission->aocs.attitude_error[0]) & 0xFFFFFFFF);
    for (int b = 0; b < 4; ++b) att[b] = static_cast<std::uint8_t>(err >> (8 * b));
    (void)api.write_port("att_src", att);
  };

  PartitionConfig vbn;
  vbn.name = "VBN";
  vbn.region = {0x10000, 0x20000};
  vbn.profile = {200'000, 0, 50'000};
  vbn.on_job = [mission](PartitionApi& api) {
    const apps::VbnFrame frame = apps::render_frame(
        32, 32, 15.0 + 2.0 * mission->rng.next_double(), 16.0, 2.0, 12,
        mission->rng);
    const apps::VbnMeasurement fix = apps::measure_centroid(frame, 60);
    ++mission->vbn_frames;
    if (fix.valid) ++mission->vbn_fixes;
    (void)api.read_sample("att_dst");
  };

  PartitionConfig eor;
  eor.name = "EOR";
  eor.region = {0x30000, 0x10000};
  eor.profile = {1'000'000, 0, 25'000};
  eor.on_job = [mission](PartitionApi&) {
    apps::eor_step(mission->eor, mission->eor_config);
  };

  config.partitions = {aocs, vbn, eor};
  config.ports = {
      {"att_src", PortKind::kSampling, PortDir::kSource, 0, 16, 8, 0},
      {"att_dst", PortKind::kSampling, PortDir::kDestination, 1, 16, 8, 500'000},
  };
  config.channels = {{"att_src", {"att_dst"}}};

  Hypervisor hv(config);
  Status valid = hv.validate();
  if (!valid.ok()) {
    std::fprintf(stderr, "plan invalid: %s\n", valid.to_string().c_str());
    return 1;
  }

  std::printf("XtratuM-NG mission demo: AOCS + VBN + EOR on 4 cores, "
              "100 ms major frame\n");
  std::printf("%-6s %-14s %-12s %-14s\n", "t(s)", "att_err(mrad)",
              "vbn fixes", "orbit sma(km)");
  for (int second = 0; second < 20; second += 4) {
    auto stats = hv.run(4'000'000);
    if (!stats.ok()) {
      std::fprintf(stderr, "run failed: %s\n", stats.status().to_string().c_str());
      return 1;
    }
    std::printf("%-6d %-14.1f %llu/%-10llu %-14.1f\n", second + 4,
                apps::fx_to_double(apps::fx_abs(mission->aocs.attitude_error[0])) * 1000,
                static_cast<unsigned long long>(mission->vbn_fixes),
                static_cast<unsigned long long>(mission->vbn_frames),
                mission->eor.sma_km);
  }

  auto final_stats = hv.run(1'000'000);
  if (final_stats.ok()) {
    const RunStats& s = final_stats.value();
    std::printf("\nTSP accounting over the last second:\n");
    for (std::size_t p = 0; p < s.partitions.size(); ++p) {
      std::printf("  %-5s jobs=%llu misses=%llu cpu=%llu us jitter<=%llu us [%s]\n",
                  config.partitions[p].name.c_str(),
                  static_cast<unsigned long long>(s.partitions[p].jobs_completed),
                  static_cast<unsigned long long>(s.partitions[p].deadline_misses),
                  static_cast<unsigned long long>(s.partitions[p].cpu_time),
                  static_cast<unsigned long long>(s.partitions[p].max_jitter),
                  to_string(s.partitions[p].final_state));
    }
    std::printf("  context switches: %llu, port messages: %llu\n",
                static_cast<unsigned long long>(s.context_switches),
                static_cast<unsigned long long>(s.port_messages));
  }
  return 0;
}
