// Vision use case (paper Sec. V: "image and vision processing algorithms"):
// Sobel edge detection synthesized to an accelerator, integrated behind the
// AXI4 interconnect like on the real NG-ULTRA (data in DDR, DMA in, compute,
// DMA out), and validated pixel-by-pixel. Prints before/after ASCII frames
// and the data-movement budget the AXI memory-delay model predicts.
#include <cstdio>

#include "apps/kernels.hpp"
#include "axi/hls_axi.hpp"
#include "common/rng.hpp"
#include "hls/flow.hpp"

namespace {

void print_frame(const char* title, const std::vector<std::uint64_t>& pixels,
                 unsigned width, unsigned height) {
  static const char* kRamp = " .:-=+*#%@";
  std::printf("%s\n", title);
  for (unsigned y = 0; y < height; ++y) {
    std::printf("  ");
    for (unsigned x = 0; x < width; ++x) {
      const unsigned v = static_cast<unsigned>(pixels[y * width + x]);
      std::printf("%c", kRamp[(v * 9) / 255]);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace hermes;
  constexpr unsigned kW = 16, kH = 16;

  // Synthesize the Sobel kernel.
  const apps::KernelSpec spec = apps::sobel_kernel(kW, kH);
  hls::FlowOptions options;
  options.top = spec.name;
  auto flow = hls::run_flow(spec.source, options);
  if (!flow.ok()) {
    std::fprintf(stderr, "HLS failed: %s\n", flow.status().to_string().c_str());
    return 1;
  }
  std::printf("Sobel accelerator: %u FSM states, %zu netlist cells\n\n",
              flow.value().fsm_states, flow.value().fsmd.module.stats().cells);

  // A synthetic scene: bright disc on a dark background.
  std::vector<std::uint64_t> image(kW * kH, 16);
  for (unsigned y = 0; y < kH; ++y) {
    for (unsigned x = 0; x < kW; ++x) {
      const int dx = static_cast<int>(x) - 8, dy = static_cast<int>(y) - 8;
      if (dx * dx + dy * dy < 22) image[y * kW + x] = 220;
    }
  }
  print_frame("input frame:", image, kW, kH);

  // Place the frame in external DDR behind AXI and run with the DMA wrapper.
  const axi::AxiMap map = axi::default_axi_map(flow.value().function);
  axi::MemoryTiming timing;
  timing.read_latency = 12;
  timing.write_latency = 8;
  axi::AxiSlaveMemory ddr(1 << 16, timing);
  for (std::size_t i = 0; i < image.size(); ++i) {
    ddr.poke_word(map.base_addr.at(0) + i, image[i], 1);
  }
  auto run = axi::run_with_axi(flow.value(), {}, ddr, map,
                               axi::AxiMode::kDmaBurst);
  if (!run.ok() || !run.value().match) {
    std::fprintf(stderr, "AXI run failed or mismatched\n");
    return 1;
  }

  std::vector<std::uint64_t> edges(kW * kH);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    edges[i] = ddr.peek_word(map.base_addr.at(1) + i, 1);
  }
  print_frame("\nedge map (computed by the accelerator, read back from DDR):",
              edges, kW, kH);

  std::printf("\ncycles: %llu compute + %llu AXI transfer = %llu total "
              "(%llu bus beats)\n",
              static_cast<unsigned long long>(run.value().compute_cycles),
              static_cast<unsigned long long>(run.value().transfer_cycles),
              static_cast<unsigned long long>(run.value().total_cycles),
              static_cast<unsigned long long>(run.value().bus.beats));
  std::printf("hardware result verified against the golden software model.\n");
  return 0;
}
