// Boot-chain demo (paper Sec. IV / Fig. 5): stages a complete boot
// configuration — BL1 image, load list with an application binary, a real
// HLS-generated eFPGA bitstream, and a BL2 stage — then boots the SoC from
// flash, prints the BL1 boot report, and repeats the boot after destroying
// one flash replica (TMR recovery) and after destroying all of them
// (SpaceWire fallback).
#include <cstdio>

#include "apps/kernels.hpp"
#include "boot/bl.hpp"
#include "common/rng.hpp"
#include "hls/flow.hpp"
#include "nxmap/flow.hpp"

namespace {

using namespace hermes;
using namespace hermes::boot;

std::vector<std::uint8_t> make_image(std::size_t bytes, std::uint8_t seed) {
  std::vector<std::uint8_t> image(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    image[i] = static_cast<std::uint8_t>(seed ^ (i * 31));
  }
  return image;
}

void boot_and_report(const char* title, BootEnvironment& env,
                     bool print_report) {
  std::printf("=== %s ===\n", title);
  const BootResult result = run_boot_chain(env);
  std::printf("reached %s: %s\n", to_string(result.reached),
              result.status.to_string().c_str());
  if (print_report) std::printf("%s", result.report.render().c_str());
  std::printf("stage cycles: BL0=%llu BL1=%llu BL2=%llu\n",
              static_cast<unsigned long long>(result.bl0_cycles),
              static_cast<unsigned long long>(result.bl1_cycles),
              static_cast<unsigned long long>(result.bl2_cycles));
  if (env.soc.efpga_programmed) {
    std::printf("eFPGA matrix programmed: %u frames (device id 0x%08x)\n",
                env.soc.efpga_frames, env.soc.efpga_device_id);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // Build a real bitstream for the load list: synthesize the FIR use case
  // and run it through the NXmap backend.
  const apps::KernelSpec spec = apps::fir_kernel();
  hls::FlowOptions options;
  options.top = spec.name;
  auto flow = hls::run_flow(spec.source, options);
  if (!flow.ok()) {
    std::fprintf(stderr, "HLS failed\n");
    return 1;
  }
  const nx::NxDevice device = nx::make_device(hls::ng_ultra());
  auto backend = nx::run_backend(flow.value().fsmd.module, device);
  if (!backend.ok()) {
    std::fprintf(stderr, "backend failed\n");
    return 1;
  }
  std::printf("payload bitstream: %zu bytes (FIR accelerator for %s)\n\n",
              backend.value().bitstream.size(), device.name.c_str());

  auto stage_env = [&](BootEnvironment& env) {
    LoadList list;
    LoadEntry app;
    app.kind = LoadKind::kSoftware;
    app.name = "flightsw";
    app.dest_addr = MemoryMap::kDdrBase + 0x100000;
    LoadEntry bitstream;
    bitstream.kind = LoadKind::kBitstream;
    bitstream.name = "fir_accel";
    LoadEntry bl2;
    bl2.kind = LoadKind::kBl2;
    bl2.name = "bl2";
    bl2.dest_addr = MemoryMap::kDdrBase;
    list.entries = {app, bitstream, bl2};
    stage_boot_media(env, make_image(32 * 1024, 0xB1), list,
                     {make_image(128 * 1024, 0xA0), backend.value().bitstream,
                      make_image(16 * 1024, 0xB2)});
  };

  // 1. Clean boot from flash.
  {
    BootEnvironment env;
    stage_env(env);
    boot_and_report("clean boot from flash (3-replica TMR bank)", env, true);
  }

  // 2. One flash replica heavily corrupted: TMR voting recovers.
  {
    BootEnvironment env;
    stage_env(env);
    Rng rng(7);
    env.flash.device(2).inject_bitflips(5000, rng);
    boot_and_report("boot with 5000 bit flips in one flash replica", env, false);
  }

  // 3. BL1 destroyed in every replica: BL0 falls back to SpaceWire.
  {
    BootEnvironment env;
    stage_env(env);
    std::vector<std::uint8_t> junk(32 * 1024, 0x00);
    for (unsigned replica = 0; replica < 3; ++replica) {
      env.flash.device(replica).program(FlashLayout::kBl1Image, junk);
    }
    boot_and_report("boot with BL1 destroyed in all replicas (SpW fallback)",
                    env, false);
  }
  return 0;
}
