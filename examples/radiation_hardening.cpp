// Radiation-hardening demo: the "triple modular redundancy ... completely
// transparent to the application developer" of NG-ULTRA (paper Sec. I),
// applied as a netlist transform to an HLS-generated accelerator.
//
// Shows: (1) the area/Fmax price of FF-TMR and self-healing TMR through the
// NXmap backend; (2) a live SEU barrage on the running accelerator, with the
// unprotected netlist corrupting and the hardened ones computing correctly.
#include <cstdio>

#include "common/rng.hpp"
#include "hls/flow.hpp"
#include "hw/sim.hpp"
#include "hw/tmr_transform.hpp"
#include "nxmap/flow.hpp"

namespace {

using namespace hermes;

/// Runs the dot-product accelerator with one SEU per cycle into a random
/// flip-flop; returns {correct_runs, total_runs}.
std::pair<int, int> barrage(const hw::Module& module, std::uint64_t expect,
                            bool one_upset_per_group) {
  hw::Simulator probe(module);
  const auto ffs = probe.register_outputs();
  Rng rng(1234);
  int correct = 0;
  const int runs = 25;
  for (int run = 0; run < runs; ++run) {
    hw::Simulator sim(module);
    for (std::size_t i = 0; i < 8; ++i) {
      sim.write_memory(0, i, i + 1);
      sim.write_memory(1, i, 8 - i);
    }
    sim.set_input("start", 1);
    sim.eval_comb();
    std::uint64_t guard = 0;
    while (sim.get_output("done") == 0 && guard++ < 20'000) {
      const std::size_t index = rng.next_below(ffs.size());
      if (one_upset_per_group) {
        // plain TMR assumption: skip groups with an unhealed upset
        // (replica wires come in consecutive triples).
        const std::size_t group = index / 3 * 3;
        if (group + 2 < ffs.size()) {
          const auto v0 = sim.get(ffs[group]);
          const auto v1 = sim.get(ffs[group + 1]);
          const auto v2 = sim.get(ffs[group + 2]);
          if (!(v0 == v1 && v1 == v2)) {
            sim.step();
            continue;
          }
        }
      }
      const hw::WireId target = ffs[index];
      sim.corrupt_wire(target,
                       static_cast<unsigned>(
                           rng.next_below(module.wire_width(target))));
      sim.step();
    }
    if (guard < 20'000 && sim.get_output("return_value") == expect) ++correct;
  }
  return {correct, runs};
}

}  // namespace

int main() {
  hls::FlowOptions options;
  options.top = "dot";
  auto flow = hls::run_flow(R"(
    int dot(int a[8], int b[8]) {
      int acc = 0;
      for (int i = 0; i < 8; i = i + 1) { acc = acc + a[i] * b[i]; }
      return acc;
    }
  )", options);
  if (!flow.ok()) {
    std::fprintf(stderr, "HLS failed: %s\n", flow.status().to_string().c_str());
    return 1;
  }
  std::uint64_t expect = 0;
  for (int i = 0; i < 8; ++i) expect += (i + 1) * (8 - i);

  hw::TmrStats ff_stats, heal_stats;
  hw::TmrOptions healing;
  healing.self_healing = true;
  const hw::Module plain = flow.value().fsmd.module;
  const hw::Module ff_tmr = hw::tmr_transform(plain, &ff_stats);
  const hw::Module heal_tmr = hw::tmr_transform(plain, &heal_stats, healing);

  // Cost through the NXmap backend.
  const nx::NxDevice device = nx::make_device(hls::ng_ultra());
  std::printf("hardening cost on %s (dot-product accelerator):\n",
              device.name.c_str());
  std::printf("  %-18s %8s %8s %10s\n", "variant", "LUTs", "FFs", "Fmax");
  struct Row {
    const char* name;
    const hw::Module* module;
  };
  for (const Row& row : {Row{"plain", &plain}, Row{"ff-tmr", &ff_tmr},
                         Row{"self-healing-tmr", &heal_tmr}}) {
    auto backend = nx::run_backend(*row.module, device);
    if (backend.ok()) {
      std::printf("  %-18s %8zu %8zu %7.1f MHz\n", row.name,
                  backend.value().mapped.utilization.luts,
                  backend.value().mapped.utilization.ffs,
                  backend.value().timing.fmax_mhz);
    }
  }

  // SEU barrage: one flip-flop upset per clock cycle, 25 runs each.
  std::printf("\nSEU barrage (1 random FF upset per cycle, 25 runs):\n");
  const auto unprotected = barrage(plain, expect, false);
  std::printf("  unprotected      : %d/%d runs correct\n", unprotected.first,
              unprotected.second);
  const auto protected_ff = barrage(ff_tmr, expect, true);
  std::printf("  ff-tmr           : %d/%d runs correct "
              "(single outstanding upset per register group)\n",
              protected_ff.first, protected_ff.second);
  const auto protected_heal = barrage(heal_tmr, expect, false);
  std::printf("  self-healing-tmr : %d/%d runs correct "
              "(no restriction: upsets heal each edge)\n",
              protected_heal.first, protected_heal.second);
  return 0;
}
