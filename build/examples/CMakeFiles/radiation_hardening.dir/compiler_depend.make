# Empty compiler generated dependencies file for radiation_hardening.
# This may be replaced when dependencies are built.
