file(REMOVE_RECURSE
  "CMakeFiles/radiation_hardening.dir/radiation_hardening.cpp.o"
  "CMakeFiles/radiation_hardening.dir/radiation_hardening.cpp.o.d"
  "radiation_hardening"
  "radiation_hardening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radiation_hardening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
