# Empty compiler generated dependencies file for boot_chain.
# This may be replaced when dependencies are built.
