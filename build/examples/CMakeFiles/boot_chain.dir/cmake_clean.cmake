file(REMOVE_RECURSE
  "CMakeFiles/boot_chain.dir/boot_chain.cpp.o"
  "CMakeFiles/boot_chain.dir/boot_chain.cpp.o.d"
  "boot_chain"
  "boot_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boot_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
