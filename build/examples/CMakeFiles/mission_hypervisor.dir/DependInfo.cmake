
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/mission_hypervisor.cpp" "examples/CMakeFiles/mission_hypervisor.dir/mission_hypervisor.cpp.o" "gcc" "examples/CMakeFiles/mission_hypervisor.dir/mission_hypervisor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hv/CMakeFiles/hermes_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/hermes_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hermes_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
