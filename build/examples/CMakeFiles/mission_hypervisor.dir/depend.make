# Empty dependencies file for mission_hypervisor.
# This may be replaced when dependencies are built.
