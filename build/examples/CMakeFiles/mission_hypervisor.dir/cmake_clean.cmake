file(REMOVE_RECURSE
  "CMakeFiles/mission_hypervisor.dir/mission_hypervisor.cpp.o"
  "CMakeFiles/mission_hypervisor.dir/mission_hypervisor.cpp.o.d"
  "mission_hypervisor"
  "mission_hypervisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mission_hypervisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
