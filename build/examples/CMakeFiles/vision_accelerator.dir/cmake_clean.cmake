file(REMOVE_RECURSE
  "CMakeFiles/vision_accelerator.dir/vision_accelerator.cpp.o"
  "CMakeFiles/vision_accelerator.dir/vision_accelerator.cpp.o.d"
  "vision_accelerator"
  "vision_accelerator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vision_accelerator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
