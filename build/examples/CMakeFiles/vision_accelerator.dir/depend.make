# Empty dependencies file for vision_accelerator.
# This may be replaced when dependencies are built.
