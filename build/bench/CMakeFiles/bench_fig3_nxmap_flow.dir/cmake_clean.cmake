file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_nxmap_flow.dir/bench_fig3_nxmap_flow.cpp.o"
  "CMakeFiles/bench_fig3_nxmap_flow.dir/bench_fig3_nxmap_flow.cpp.o.d"
  "bench_fig3_nxmap_flow"
  "bench_fig3_nxmap_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_nxmap_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
