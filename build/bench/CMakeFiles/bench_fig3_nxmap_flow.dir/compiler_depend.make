# Empty compiler generated dependencies file for bench_fig3_nxmap_flow.
# This may be replaced when dependencies are built.
