file(REMOVE_RECURSE
  "CMakeFiles/bench_usecase_hv.dir/bench_usecase_hv.cpp.o"
  "CMakeFiles/bench_usecase_hv.dir/bench_usecase_hv.cpp.o.d"
  "bench_usecase_hv"
  "bench_usecase_hv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_usecase_hv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
