# Empty compiler generated dependencies file for bench_usecase_hv.
# This may be replaced when dependencies are built.
