file(REMOVE_RECURSE
  "CMakeFiles/bench_euca_characterization.dir/bench_euca_characterization.cpp.o"
  "CMakeFiles/bench_euca_characterization.dir/bench_euca_characterization.cpp.o.d"
  "bench_euca_characterization"
  "bench_euca_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_euca_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
