# Empty dependencies file for bench_euca_characterization.
# This may be replaced when dependencies are built.
