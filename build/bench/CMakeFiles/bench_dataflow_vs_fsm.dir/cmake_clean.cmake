file(REMOVE_RECURSE
  "CMakeFiles/bench_dataflow_vs_fsm.dir/bench_dataflow_vs_fsm.cpp.o"
  "CMakeFiles/bench_dataflow_vs_fsm.dir/bench_dataflow_vs_fsm.cpp.o.d"
  "bench_dataflow_vs_fsm"
  "bench_dataflow_vs_fsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dataflow_vs_fsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
