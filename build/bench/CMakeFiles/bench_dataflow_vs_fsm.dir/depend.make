# Empty dependencies file for bench_dataflow_vs_fsm.
# This may be replaced when dependencies are built.
