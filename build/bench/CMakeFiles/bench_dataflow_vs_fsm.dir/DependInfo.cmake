
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_dataflow_vs_fsm.cpp" "bench/CMakeFiles/bench_dataflow_vs_fsm.dir/bench_dataflow_vs_fsm.cpp.o" "gcc" "bench/CMakeFiles/bench_dataflow_vs_fsm.dir/bench_dataflow_vs_fsm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataflow/CMakeFiles/hermes_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/hls/CMakeFiles/hermes_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/hermes_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/hermes_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hermes_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hermes_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
