# Empty compiler generated dependencies file for bench_fig2_hls_flow.
# This may be replaced when dependencies are built.
