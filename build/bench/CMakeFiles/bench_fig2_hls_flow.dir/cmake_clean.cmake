file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_hls_flow.dir/bench_fig2_hls_flow.cpp.o"
  "CMakeFiles/bench_fig2_hls_flow.dir/bench_fig2_hls_flow.cpp.o.d"
  "bench_fig2_hls_flow"
  "bench_fig2_hls_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_hls_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
