file(REMOVE_RECURSE
  "CMakeFiles/bench_claim_speed_power.dir/bench_claim_speed_power.cpp.o"
  "CMakeFiles/bench_claim_speed_power.dir/bench_claim_speed_power.cpp.o.d"
  "bench_claim_speed_power"
  "bench_claim_speed_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_claim_speed_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
