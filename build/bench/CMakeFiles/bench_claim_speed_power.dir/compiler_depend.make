# Empty compiler generated dependencies file for bench_claim_speed_power.
# This may be replaced when dependencies are built.
