# Empty compiler generated dependencies file for bench_axi_memdelay.
# This may be replaced when dependencies are built.
