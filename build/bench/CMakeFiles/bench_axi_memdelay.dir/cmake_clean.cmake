file(REMOVE_RECURSE
  "CMakeFiles/bench_axi_memdelay.dir/bench_axi_memdelay.cpp.o"
  "CMakeFiles/bench_axi_memdelay.dir/bench_axi_memdelay.cpp.o.d"
  "bench_axi_memdelay"
  "bench_axi_memdelay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_axi_memdelay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
