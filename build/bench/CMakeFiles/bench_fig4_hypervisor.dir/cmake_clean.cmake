file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_hypervisor.dir/bench_fig4_hypervisor.cpp.o"
  "CMakeFiles/bench_fig4_hypervisor.dir/bench_fig4_hypervisor.cpp.o.d"
  "bench_fig4_hypervisor"
  "bench_fig4_hypervisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_hypervisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
