# Empty compiler generated dependencies file for bench_usecase_hls.
# This may be replaced when dependencies are built.
