file(REMOVE_RECURSE
  "CMakeFiles/bench_usecase_hls.dir/bench_usecase_hls.cpp.o"
  "CMakeFiles/bench_usecase_hls.dir/bench_usecase_hls.cpp.o.d"
  "bench_usecase_hls"
  "bench_usecase_hls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_usecase_hls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
