file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_boot.dir/bench_fig5_boot.cpp.o"
  "CMakeFiles/bench_fig5_boot.dir/bench_fig5_boot.cpp.o.d"
  "bench_fig5_boot"
  "bench_fig5_boot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_boot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
