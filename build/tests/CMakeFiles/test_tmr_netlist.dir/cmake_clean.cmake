file(REMOVE_RECURSE
  "CMakeFiles/test_tmr_netlist.dir/test_tmr_netlist.cpp.o"
  "CMakeFiles/test_tmr_netlist.dir/test_tmr_netlist.cpp.o.d"
  "test_tmr_netlist"
  "test_tmr_netlist.pdb"
  "test_tmr_netlist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tmr_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
