file(REMOVE_RECURSE
  "CMakeFiles/test_flow_errors.dir/test_flow_errors.cpp.o"
  "CMakeFiles/test_flow_errors.dir/test_flow_errors.cpp.o.d"
  "test_flow_errors"
  "test_flow_errors.pdb"
  "test_flow_errors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flow_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
