file(REMOVE_RECURSE
  "CMakeFiles/test_hls_flow.dir/test_hls_flow.cpp.o"
  "CMakeFiles/test_hls_flow.dir/test_hls_flow.cpp.o.d"
  "test_hls_flow"
  "test_hls_flow.pdb"
  "test_hls_flow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hls_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
