# Empty dependencies file for test_hls_flow.
# This may be replaced when dependencies are built.
