file(REMOVE_RECURSE
  "CMakeFiles/test_hv.dir/test_hv.cpp.o"
  "CMakeFiles/test_hv.dir/test_hv.cpp.o.d"
  "test_hv"
  "test_hv.pdb"
  "test_hv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
