file(REMOVE_RECURSE
  "CMakeFiles/test_axi_cache.dir/test_axi_cache.cpp.o"
  "CMakeFiles/test_axi_cache.dir/test_axi_cache.cpp.o.d"
  "test_axi_cache"
  "test_axi_cache.pdb"
  "test_axi_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_axi_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
