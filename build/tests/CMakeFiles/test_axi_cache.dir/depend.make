# Empty dependencies file for test_axi_cache.
# This may be replaced when dependencies are built.
