file(REMOVE_RECURSE
  "CMakeFiles/test_nxmap.dir/test_nxmap.cpp.o"
  "CMakeFiles/test_nxmap.dir/test_nxmap.cpp.o.d"
  "test_nxmap"
  "test_nxmap.pdb"
  "test_nxmap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nxmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
