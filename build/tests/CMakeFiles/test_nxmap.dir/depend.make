# Empty dependencies file for test_nxmap.
# This may be replaced when dependencies are built.
