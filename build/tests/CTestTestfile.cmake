# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_fault[1]_include.cmake")
include("/root/repo/build/tests/test_hw[1]_include.cmake")
include("/root/repo/build/tests/test_frontend[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_hls_flow[1]_include.cmake")
include("/root/repo/build/tests/test_axi[1]_include.cmake")
include("/root/repo/build/tests/test_nxmap[1]_include.cmake")
include("/root/repo/build/tests/test_hv[1]_include.cmake")
include("/root/repo/build/tests/test_boot[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_dataflow[1]_include.cmake")
include("/root/repo/build/tests/test_axi_cache[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_tmr_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_xml[1]_include.cmake")
include("/root/repo/build/tests/test_schedule[1]_include.cmake")
include("/root/repo/build/tests/test_flow_errors[1]_include.cmake")
