# Empty compiler generated dependencies file for hermes_nxmap.
# This may be replaced when dependencies are built.
