file(REMOVE_RECURSE
  "libhermes_nxmap.a"
)
