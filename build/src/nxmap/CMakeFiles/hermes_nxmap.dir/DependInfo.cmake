
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nxmap/bitstream.cpp" "src/nxmap/CMakeFiles/hermes_nxmap.dir/bitstream.cpp.o" "gcc" "src/nxmap/CMakeFiles/hermes_nxmap.dir/bitstream.cpp.o.d"
  "/root/repo/src/nxmap/detailed_route.cpp" "src/nxmap/CMakeFiles/hermes_nxmap.dir/detailed_route.cpp.o" "gcc" "src/nxmap/CMakeFiles/hermes_nxmap.dir/detailed_route.cpp.o.d"
  "/root/repo/src/nxmap/device.cpp" "src/nxmap/CMakeFiles/hermes_nxmap.dir/device.cpp.o" "gcc" "src/nxmap/CMakeFiles/hermes_nxmap.dir/device.cpp.o.d"
  "/root/repo/src/nxmap/flow.cpp" "src/nxmap/CMakeFiles/hermes_nxmap.dir/flow.cpp.o" "gcc" "src/nxmap/CMakeFiles/hermes_nxmap.dir/flow.cpp.o.d"
  "/root/repo/src/nxmap/place.cpp" "src/nxmap/CMakeFiles/hermes_nxmap.dir/place.cpp.o" "gcc" "src/nxmap/CMakeFiles/hermes_nxmap.dir/place.cpp.o.d"
  "/root/repo/src/nxmap/power.cpp" "src/nxmap/CMakeFiles/hermes_nxmap.dir/power.cpp.o" "gcc" "src/nxmap/CMakeFiles/hermes_nxmap.dir/power.cpp.o.d"
  "/root/repo/src/nxmap/route.cpp" "src/nxmap/CMakeFiles/hermes_nxmap.dir/route.cpp.o" "gcc" "src/nxmap/CMakeFiles/hermes_nxmap.dir/route.cpp.o.d"
  "/root/repo/src/nxmap/sta.cpp" "src/nxmap/CMakeFiles/hermes_nxmap.dir/sta.cpp.o" "gcc" "src/nxmap/CMakeFiles/hermes_nxmap.dir/sta.cpp.o.d"
  "/root/repo/src/nxmap/techmap.cpp" "src/nxmap/CMakeFiles/hermes_nxmap.dir/techmap.cpp.o" "gcc" "src/nxmap/CMakeFiles/hermes_nxmap.dir/techmap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hermes_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hermes_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/hls/CMakeFiles/hermes_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/hermes_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/hermes_frontend.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
