file(REMOVE_RECURSE
  "CMakeFiles/hermes_nxmap.dir/bitstream.cpp.o"
  "CMakeFiles/hermes_nxmap.dir/bitstream.cpp.o.d"
  "CMakeFiles/hermes_nxmap.dir/detailed_route.cpp.o"
  "CMakeFiles/hermes_nxmap.dir/detailed_route.cpp.o.d"
  "CMakeFiles/hermes_nxmap.dir/device.cpp.o"
  "CMakeFiles/hermes_nxmap.dir/device.cpp.o.d"
  "CMakeFiles/hermes_nxmap.dir/flow.cpp.o"
  "CMakeFiles/hermes_nxmap.dir/flow.cpp.o.d"
  "CMakeFiles/hermes_nxmap.dir/place.cpp.o"
  "CMakeFiles/hermes_nxmap.dir/place.cpp.o.d"
  "CMakeFiles/hermes_nxmap.dir/power.cpp.o"
  "CMakeFiles/hermes_nxmap.dir/power.cpp.o.d"
  "CMakeFiles/hermes_nxmap.dir/route.cpp.o"
  "CMakeFiles/hermes_nxmap.dir/route.cpp.o.d"
  "CMakeFiles/hermes_nxmap.dir/sta.cpp.o"
  "CMakeFiles/hermes_nxmap.dir/sta.cpp.o.d"
  "CMakeFiles/hermes_nxmap.dir/techmap.cpp.o"
  "CMakeFiles/hermes_nxmap.dir/techmap.cpp.o.d"
  "libhermes_nxmap.a"
  "libhermes_nxmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_nxmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
