# Empty dependencies file for hermes_frontend.
# This may be replaced when dependencies are built.
