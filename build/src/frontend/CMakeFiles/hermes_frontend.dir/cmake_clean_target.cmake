file(REMOVE_RECURSE
  "libhermes_frontend.a"
)
