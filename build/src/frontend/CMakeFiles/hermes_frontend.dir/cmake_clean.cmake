file(REMOVE_RECURSE
  "CMakeFiles/hermes_frontend.dir/ast.cpp.o"
  "CMakeFiles/hermes_frontend.dir/ast.cpp.o.d"
  "CMakeFiles/hermes_frontend.dir/lexer.cpp.o"
  "CMakeFiles/hermes_frontend.dir/lexer.cpp.o.d"
  "CMakeFiles/hermes_frontend.dir/parser.cpp.o"
  "CMakeFiles/hermes_frontend.dir/parser.cpp.o.d"
  "CMakeFiles/hermes_frontend.dir/typecheck.cpp.o"
  "CMakeFiles/hermes_frontend.dir/typecheck.cpp.o.d"
  "libhermes_frontend.a"
  "libhermes_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
