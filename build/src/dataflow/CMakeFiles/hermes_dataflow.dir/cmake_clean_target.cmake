file(REMOVE_RECURSE
  "libhermes_dataflow.a"
)
