file(REMOVE_RECURSE
  "CMakeFiles/hermes_dataflow.dir/taskgraph.cpp.o"
  "CMakeFiles/hermes_dataflow.dir/taskgraph.cpp.o.d"
  "libhermes_dataflow.a"
  "libhermes_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
