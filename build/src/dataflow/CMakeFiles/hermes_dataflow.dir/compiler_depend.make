# Empty compiler generated dependencies file for hermes_dataflow.
# This may be replaced when dependencies are built.
