
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/cdfg.cpp" "src/ir/CMakeFiles/hermes_ir.dir/cdfg.cpp.o" "gcc" "src/ir/CMakeFiles/hermes_ir.dir/cdfg.cpp.o.d"
  "/root/repo/src/ir/interp.cpp" "src/ir/CMakeFiles/hermes_ir.dir/interp.cpp.o" "gcc" "src/ir/CMakeFiles/hermes_ir.dir/interp.cpp.o.d"
  "/root/repo/src/ir/ir.cpp" "src/ir/CMakeFiles/hermes_ir.dir/ir.cpp.o" "gcc" "src/ir/CMakeFiles/hermes_ir.dir/ir.cpp.o.d"
  "/root/repo/src/ir/lower.cpp" "src/ir/CMakeFiles/hermes_ir.dir/lower.cpp.o" "gcc" "src/ir/CMakeFiles/hermes_ir.dir/lower.cpp.o.d"
  "/root/repo/src/ir/passes.cpp" "src/ir/CMakeFiles/hermes_ir.dir/passes.cpp.o" "gcc" "src/ir/CMakeFiles/hermes_ir.dir/passes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hermes_common.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/hermes_frontend.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
