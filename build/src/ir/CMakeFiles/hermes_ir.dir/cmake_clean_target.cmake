file(REMOVE_RECURSE
  "libhermes_ir.a"
)
