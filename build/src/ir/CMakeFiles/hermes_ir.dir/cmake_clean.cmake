file(REMOVE_RECURSE
  "CMakeFiles/hermes_ir.dir/cdfg.cpp.o"
  "CMakeFiles/hermes_ir.dir/cdfg.cpp.o.d"
  "CMakeFiles/hermes_ir.dir/interp.cpp.o"
  "CMakeFiles/hermes_ir.dir/interp.cpp.o.d"
  "CMakeFiles/hermes_ir.dir/ir.cpp.o"
  "CMakeFiles/hermes_ir.dir/ir.cpp.o.d"
  "CMakeFiles/hermes_ir.dir/lower.cpp.o"
  "CMakeFiles/hermes_ir.dir/lower.cpp.o.d"
  "CMakeFiles/hermes_ir.dir/passes.cpp.o"
  "CMakeFiles/hermes_ir.dir/passes.cpp.o.d"
  "libhermes_ir.a"
  "libhermes_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
