# Empty dependencies file for hermes_ir.
# This may be replaced when dependencies are built.
