# Empty compiler generated dependencies file for hermes_fault.
# This may be replaced when dependencies are built.
