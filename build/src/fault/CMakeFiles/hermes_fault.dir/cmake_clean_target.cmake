file(REMOVE_RECURSE
  "libhermes_fault.a"
)
