
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/edac.cpp" "src/fault/CMakeFiles/hermes_fault.dir/edac.cpp.o" "gcc" "src/fault/CMakeFiles/hermes_fault.dir/edac.cpp.o.d"
  "/root/repo/src/fault/scrub_memory.cpp" "src/fault/CMakeFiles/hermes_fault.dir/scrub_memory.cpp.o" "gcc" "src/fault/CMakeFiles/hermes_fault.dir/scrub_memory.cpp.o.d"
  "/root/repo/src/fault/seu.cpp" "src/fault/CMakeFiles/hermes_fault.dir/seu.cpp.o" "gcc" "src/fault/CMakeFiles/hermes_fault.dir/seu.cpp.o.d"
  "/root/repo/src/fault/tmr.cpp" "src/fault/CMakeFiles/hermes_fault.dir/tmr.cpp.o" "gcc" "src/fault/CMakeFiles/hermes_fault.dir/tmr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hermes_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
