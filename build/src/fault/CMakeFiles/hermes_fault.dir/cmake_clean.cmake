file(REMOVE_RECURSE
  "CMakeFiles/hermes_fault.dir/edac.cpp.o"
  "CMakeFiles/hermes_fault.dir/edac.cpp.o.d"
  "CMakeFiles/hermes_fault.dir/scrub_memory.cpp.o"
  "CMakeFiles/hermes_fault.dir/scrub_memory.cpp.o.d"
  "CMakeFiles/hermes_fault.dir/seu.cpp.o"
  "CMakeFiles/hermes_fault.dir/seu.cpp.o.d"
  "CMakeFiles/hermes_fault.dir/tmr.cpp.o"
  "CMakeFiles/hermes_fault.dir/tmr.cpp.o.d"
  "libhermes_fault.a"
  "libhermes_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
