file(REMOVE_RECURSE
  "CMakeFiles/hermes_axi.dir/cache.cpp.o"
  "CMakeFiles/hermes_axi.dir/cache.cpp.o.d"
  "CMakeFiles/hermes_axi.dir/checker.cpp.o"
  "CMakeFiles/hermes_axi.dir/checker.cpp.o.d"
  "CMakeFiles/hermes_axi.dir/hls_axi.cpp.o"
  "CMakeFiles/hermes_axi.dir/hls_axi.cpp.o.d"
  "CMakeFiles/hermes_axi.dir/master.cpp.o"
  "CMakeFiles/hermes_axi.dir/master.cpp.o.d"
  "CMakeFiles/hermes_axi.dir/protocol.cpp.o"
  "CMakeFiles/hermes_axi.dir/protocol.cpp.o.d"
  "CMakeFiles/hermes_axi.dir/slave_memory.cpp.o"
  "CMakeFiles/hermes_axi.dir/slave_memory.cpp.o.d"
  "libhermes_axi.a"
  "libhermes_axi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_axi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
