# Empty dependencies file for hermes_axi.
# This may be replaced when dependencies are built.
