file(REMOVE_RECURSE
  "libhermes_axi.a"
)
