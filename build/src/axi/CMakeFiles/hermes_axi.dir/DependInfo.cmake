
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/axi/cache.cpp" "src/axi/CMakeFiles/hermes_axi.dir/cache.cpp.o" "gcc" "src/axi/CMakeFiles/hermes_axi.dir/cache.cpp.o.d"
  "/root/repo/src/axi/checker.cpp" "src/axi/CMakeFiles/hermes_axi.dir/checker.cpp.o" "gcc" "src/axi/CMakeFiles/hermes_axi.dir/checker.cpp.o.d"
  "/root/repo/src/axi/hls_axi.cpp" "src/axi/CMakeFiles/hermes_axi.dir/hls_axi.cpp.o" "gcc" "src/axi/CMakeFiles/hermes_axi.dir/hls_axi.cpp.o.d"
  "/root/repo/src/axi/master.cpp" "src/axi/CMakeFiles/hermes_axi.dir/master.cpp.o" "gcc" "src/axi/CMakeFiles/hermes_axi.dir/master.cpp.o.d"
  "/root/repo/src/axi/protocol.cpp" "src/axi/CMakeFiles/hermes_axi.dir/protocol.cpp.o" "gcc" "src/axi/CMakeFiles/hermes_axi.dir/protocol.cpp.o.d"
  "/root/repo/src/axi/slave_memory.cpp" "src/axi/CMakeFiles/hermes_axi.dir/slave_memory.cpp.o" "gcc" "src/axi/CMakeFiles/hermes_axi.dir/slave_memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hermes_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hls/CMakeFiles/hermes_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/hermes_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/hermes_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hermes_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
