
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/aocs.cpp" "src/apps/CMakeFiles/hermes_apps.dir/aocs.cpp.o" "gcc" "src/apps/CMakeFiles/hermes_apps.dir/aocs.cpp.o.d"
  "/root/repo/src/apps/ccsds.cpp" "src/apps/CMakeFiles/hermes_apps.dir/ccsds.cpp.o" "gcc" "src/apps/CMakeFiles/hermes_apps.dir/ccsds.cpp.o.d"
  "/root/repo/src/apps/compress.cpp" "src/apps/CMakeFiles/hermes_apps.dir/compress.cpp.o" "gcc" "src/apps/CMakeFiles/hermes_apps.dir/compress.cpp.o.d"
  "/root/repo/src/apps/eor.cpp" "src/apps/CMakeFiles/hermes_apps.dir/eor.cpp.o" "gcc" "src/apps/CMakeFiles/hermes_apps.dir/eor.cpp.o.d"
  "/root/repo/src/apps/kernels.cpp" "src/apps/CMakeFiles/hermes_apps.dir/kernels.cpp.o" "gcc" "src/apps/CMakeFiles/hermes_apps.dir/kernels.cpp.o.d"
  "/root/repo/src/apps/vbn.cpp" "src/apps/CMakeFiles/hermes_apps.dir/vbn.cpp.o" "gcc" "src/apps/CMakeFiles/hermes_apps.dir/vbn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hermes_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
