# Empty dependencies file for hermes_apps.
# This may be replaced when dependencies are built.
