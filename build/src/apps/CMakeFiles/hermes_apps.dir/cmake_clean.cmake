file(REMOVE_RECURSE
  "CMakeFiles/hermes_apps.dir/aocs.cpp.o"
  "CMakeFiles/hermes_apps.dir/aocs.cpp.o.d"
  "CMakeFiles/hermes_apps.dir/ccsds.cpp.o"
  "CMakeFiles/hermes_apps.dir/ccsds.cpp.o.d"
  "CMakeFiles/hermes_apps.dir/compress.cpp.o"
  "CMakeFiles/hermes_apps.dir/compress.cpp.o.d"
  "CMakeFiles/hermes_apps.dir/eor.cpp.o"
  "CMakeFiles/hermes_apps.dir/eor.cpp.o.d"
  "CMakeFiles/hermes_apps.dir/kernels.cpp.o"
  "CMakeFiles/hermes_apps.dir/kernels.cpp.o.d"
  "CMakeFiles/hermes_apps.dir/vbn.cpp.o"
  "CMakeFiles/hermes_apps.dir/vbn.cpp.o.d"
  "libhermes_apps.a"
  "libhermes_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
