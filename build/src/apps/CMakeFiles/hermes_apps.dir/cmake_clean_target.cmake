file(REMOVE_RECURSE
  "libhermes_apps.a"
)
