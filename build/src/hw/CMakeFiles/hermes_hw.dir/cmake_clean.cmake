file(REMOVE_RECURSE
  "CMakeFiles/hermes_hw.dir/netlist.cpp.o"
  "CMakeFiles/hermes_hw.dir/netlist.cpp.o.d"
  "CMakeFiles/hermes_hw.dir/sim.cpp.o"
  "CMakeFiles/hermes_hw.dir/sim.cpp.o.d"
  "CMakeFiles/hermes_hw.dir/tmr_transform.cpp.o"
  "CMakeFiles/hermes_hw.dir/tmr_transform.cpp.o.d"
  "CMakeFiles/hermes_hw.dir/vcd.cpp.o"
  "CMakeFiles/hermes_hw.dir/vcd.cpp.o.d"
  "CMakeFiles/hermes_hw.dir/verilog.cpp.o"
  "CMakeFiles/hermes_hw.dir/verilog.cpp.o.d"
  "libhermes_hw.a"
  "libhermes_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
