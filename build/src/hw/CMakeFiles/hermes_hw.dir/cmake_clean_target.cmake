file(REMOVE_RECURSE
  "libhermes_hw.a"
)
