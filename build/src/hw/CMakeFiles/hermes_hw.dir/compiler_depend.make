# Empty compiler generated dependencies file for hermes_hw.
# This may be replaced when dependencies are built.
