
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/netlist.cpp" "src/hw/CMakeFiles/hermes_hw.dir/netlist.cpp.o" "gcc" "src/hw/CMakeFiles/hermes_hw.dir/netlist.cpp.o.d"
  "/root/repo/src/hw/sim.cpp" "src/hw/CMakeFiles/hermes_hw.dir/sim.cpp.o" "gcc" "src/hw/CMakeFiles/hermes_hw.dir/sim.cpp.o.d"
  "/root/repo/src/hw/tmr_transform.cpp" "src/hw/CMakeFiles/hermes_hw.dir/tmr_transform.cpp.o" "gcc" "src/hw/CMakeFiles/hermes_hw.dir/tmr_transform.cpp.o.d"
  "/root/repo/src/hw/vcd.cpp" "src/hw/CMakeFiles/hermes_hw.dir/vcd.cpp.o" "gcc" "src/hw/CMakeFiles/hermes_hw.dir/vcd.cpp.o.d"
  "/root/repo/src/hw/verilog.cpp" "src/hw/CMakeFiles/hermes_hw.dir/verilog.cpp.o" "gcc" "src/hw/CMakeFiles/hermes_hw.dir/verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hermes_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
