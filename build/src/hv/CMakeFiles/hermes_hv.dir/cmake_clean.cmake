file(REMOVE_RECURSE
  "CMakeFiles/hermes_hv.dir/hypervisor.cpp.o"
  "CMakeFiles/hermes_hv.dir/hypervisor.cpp.o.d"
  "CMakeFiles/hermes_hv.dir/ports.cpp.o"
  "CMakeFiles/hermes_hv.dir/ports.cpp.o.d"
  "libhermes_hv.a"
  "libhermes_hv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_hv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
