# Empty dependencies file for hermes_hv.
# This may be replaced when dependencies are built.
