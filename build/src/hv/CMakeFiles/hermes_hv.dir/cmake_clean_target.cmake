file(REMOVE_RECURSE
  "libhermes_hv.a"
)
