# Empty dependencies file for hermes_boot.
# This may be replaced when dependencies are built.
