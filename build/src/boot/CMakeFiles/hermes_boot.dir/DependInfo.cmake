
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/boot/bl.cpp" "src/boot/CMakeFiles/hermes_boot.dir/bl.cpp.o" "gcc" "src/boot/CMakeFiles/hermes_boot.dir/bl.cpp.o.d"
  "/root/repo/src/boot/flash.cpp" "src/boot/CMakeFiles/hermes_boot.dir/flash.cpp.o" "gcc" "src/boot/CMakeFiles/hermes_boot.dir/flash.cpp.o.d"
  "/root/repo/src/boot/loadlist.cpp" "src/boot/CMakeFiles/hermes_boot.dir/loadlist.cpp.o" "gcc" "src/boot/CMakeFiles/hermes_boot.dir/loadlist.cpp.o.d"
  "/root/repo/src/boot/soc.cpp" "src/boot/CMakeFiles/hermes_boot.dir/soc.cpp.o" "gcc" "src/boot/CMakeFiles/hermes_boot.dir/soc.cpp.o.d"
  "/root/repo/src/boot/spacewire.cpp" "src/boot/CMakeFiles/hermes_boot.dir/spacewire.cpp.o" "gcc" "src/boot/CMakeFiles/hermes_boot.dir/spacewire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hermes_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/hermes_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/nxmap/CMakeFiles/hermes_nxmap.dir/DependInfo.cmake"
  "/root/repo/build/src/hls/CMakeFiles/hermes_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hermes_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/hermes_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/hermes_frontend.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
