file(REMOVE_RECURSE
  "libhermes_boot.a"
)
