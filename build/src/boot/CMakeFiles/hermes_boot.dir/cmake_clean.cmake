file(REMOVE_RECURSE
  "CMakeFiles/hermes_boot.dir/bl.cpp.o"
  "CMakeFiles/hermes_boot.dir/bl.cpp.o.d"
  "CMakeFiles/hermes_boot.dir/flash.cpp.o"
  "CMakeFiles/hermes_boot.dir/flash.cpp.o.d"
  "CMakeFiles/hermes_boot.dir/loadlist.cpp.o"
  "CMakeFiles/hermes_boot.dir/loadlist.cpp.o.d"
  "CMakeFiles/hermes_boot.dir/soc.cpp.o"
  "CMakeFiles/hermes_boot.dir/soc.cpp.o.d"
  "CMakeFiles/hermes_boot.dir/spacewire.cpp.o"
  "CMakeFiles/hermes_boot.dir/spacewire.cpp.o.d"
  "libhermes_boot.a"
  "libhermes_boot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_boot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
