file(REMOVE_RECURSE
  "libhermes_common.a"
)
