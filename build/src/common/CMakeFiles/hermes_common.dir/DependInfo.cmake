
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/crc.cpp" "src/common/CMakeFiles/hermes_common.dir/crc.cpp.o" "gcc" "src/common/CMakeFiles/hermes_common.dir/crc.cpp.o.d"
  "/root/repo/src/common/sha256.cpp" "src/common/CMakeFiles/hermes_common.dir/sha256.cpp.o" "gcc" "src/common/CMakeFiles/hermes_common.dir/sha256.cpp.o.d"
  "/root/repo/src/common/status.cpp" "src/common/CMakeFiles/hermes_common.dir/status.cpp.o" "gcc" "src/common/CMakeFiles/hermes_common.dir/status.cpp.o.d"
  "/root/repo/src/common/strings.cpp" "src/common/CMakeFiles/hermes_common.dir/strings.cpp.o" "gcc" "src/common/CMakeFiles/hermes_common.dir/strings.cpp.o.d"
  "/root/repo/src/common/xml.cpp" "src/common/CMakeFiles/hermes_common.dir/xml.cpp.o" "gcc" "src/common/CMakeFiles/hermes_common.dir/xml.cpp.o.d"
  "/root/repo/src/common/xml_parse.cpp" "src/common/CMakeFiles/hermes_common.dir/xml_parse.cpp.o" "gcc" "src/common/CMakeFiles/hermes_common.dir/xml_parse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
