file(REMOVE_RECURSE
  "CMakeFiles/hermes_common.dir/crc.cpp.o"
  "CMakeFiles/hermes_common.dir/crc.cpp.o.d"
  "CMakeFiles/hermes_common.dir/sha256.cpp.o"
  "CMakeFiles/hermes_common.dir/sha256.cpp.o.d"
  "CMakeFiles/hermes_common.dir/status.cpp.o"
  "CMakeFiles/hermes_common.dir/status.cpp.o.d"
  "CMakeFiles/hermes_common.dir/strings.cpp.o"
  "CMakeFiles/hermes_common.dir/strings.cpp.o.d"
  "CMakeFiles/hermes_common.dir/xml.cpp.o"
  "CMakeFiles/hermes_common.dir/xml.cpp.o.d"
  "CMakeFiles/hermes_common.dir/xml_parse.cpp.o"
  "CMakeFiles/hermes_common.dir/xml_parse.cpp.o.d"
  "libhermes_common.a"
  "libhermes_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
