file(REMOVE_RECURSE
  "CMakeFiles/hermes_hls.dir/bind.cpp.o"
  "CMakeFiles/hermes_hls.dir/bind.cpp.o.d"
  "CMakeFiles/hermes_hls.dir/eucalyptus.cpp.o"
  "CMakeFiles/hermes_hls.dir/eucalyptus.cpp.o.d"
  "CMakeFiles/hermes_hls.dir/flow.cpp.o"
  "CMakeFiles/hermes_hls.dir/flow.cpp.o.d"
  "CMakeFiles/hermes_hls.dir/fsmd.cpp.o"
  "CMakeFiles/hermes_hls.dir/fsmd.cpp.o.d"
  "CMakeFiles/hermes_hls.dir/schedule.cpp.o"
  "CMakeFiles/hermes_hls.dir/schedule.cpp.o.d"
  "CMakeFiles/hermes_hls.dir/target.cpp.o"
  "CMakeFiles/hermes_hls.dir/target.cpp.o.d"
  "CMakeFiles/hermes_hls.dir/techlib.cpp.o"
  "CMakeFiles/hermes_hls.dir/techlib.cpp.o.d"
  "CMakeFiles/hermes_hls.dir/testbench.cpp.o"
  "CMakeFiles/hermes_hls.dir/testbench.cpp.o.d"
  "libhermes_hls.a"
  "libhermes_hls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_hls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
