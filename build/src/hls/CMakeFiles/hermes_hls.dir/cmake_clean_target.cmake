file(REMOVE_RECURSE
  "libhermes_hls.a"
)
