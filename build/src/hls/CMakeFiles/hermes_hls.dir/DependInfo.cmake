
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hls/bind.cpp" "src/hls/CMakeFiles/hermes_hls.dir/bind.cpp.o" "gcc" "src/hls/CMakeFiles/hermes_hls.dir/bind.cpp.o.d"
  "/root/repo/src/hls/eucalyptus.cpp" "src/hls/CMakeFiles/hermes_hls.dir/eucalyptus.cpp.o" "gcc" "src/hls/CMakeFiles/hermes_hls.dir/eucalyptus.cpp.o.d"
  "/root/repo/src/hls/flow.cpp" "src/hls/CMakeFiles/hermes_hls.dir/flow.cpp.o" "gcc" "src/hls/CMakeFiles/hermes_hls.dir/flow.cpp.o.d"
  "/root/repo/src/hls/fsmd.cpp" "src/hls/CMakeFiles/hermes_hls.dir/fsmd.cpp.o" "gcc" "src/hls/CMakeFiles/hermes_hls.dir/fsmd.cpp.o.d"
  "/root/repo/src/hls/schedule.cpp" "src/hls/CMakeFiles/hermes_hls.dir/schedule.cpp.o" "gcc" "src/hls/CMakeFiles/hermes_hls.dir/schedule.cpp.o.d"
  "/root/repo/src/hls/target.cpp" "src/hls/CMakeFiles/hermes_hls.dir/target.cpp.o" "gcc" "src/hls/CMakeFiles/hermes_hls.dir/target.cpp.o.d"
  "/root/repo/src/hls/techlib.cpp" "src/hls/CMakeFiles/hermes_hls.dir/techlib.cpp.o" "gcc" "src/hls/CMakeFiles/hermes_hls.dir/techlib.cpp.o.d"
  "/root/repo/src/hls/testbench.cpp" "src/hls/CMakeFiles/hermes_hls.dir/testbench.cpp.o" "gcc" "src/hls/CMakeFiles/hermes_hls.dir/testbench.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hermes_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/hermes_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hermes_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/hermes_frontend.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
