# Empty dependencies file for hermes_hls.
# This may be replaced when dependencies are built.
