// Unit tests for the common utility layer.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <vector>

#include "common/bits.hpp"
#include "common/crc.hpp"
#include "common/rng.hpp"
#include "common/sha256.hpp"
#include "common/status.hpp"
#include "common/strings.hpp"
#include "common/threadpool.hpp"
#include "common/xml.hpp"

namespace hermes {
namespace {

TEST(Status, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.to_string(), "ok");
}

TEST(Status, CarriesCodeAndMessage) {
  const Status status = Status::Error(ErrorCode::kParseError, "bad token");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kParseError);
  EXPECT_EQ(status.to_string(), "parse_error: bad token");
}

TEST(Status, DeadlineExceededRenders) {
  const Status status = Status::Error(ErrorCode::kDeadlineExceeded, "stuck");
  EXPECT_EQ(status.to_string(), "deadline_exceeded: stuck");
}

TEST(Result, ValueAndError) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> err(Status::Error(ErrorCode::kNotFound, "missing"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(err.value_or(7), 7);
}

TEST(Crc32, KnownVectors) {
  // Standard test vector: "123456789" -> 0xCBF43926.
  const char* data = "123456789";
  EXPECT_EQ(crc32(data, 9), 0xCBF43926u);
  // Empty input.
  EXPECT_EQ(crc32(data, 0), 0x00000000u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string text = "the quick brown fox jumps over the lazy dog";
  Crc32 crc;
  crc.update(text.data(), 10);
  crc.update(text.data() + 10, text.size() - 10);
  EXPECT_EQ(crc.value(), crc32(text.data(), text.size()));
}

TEST(Crc16, KnownVector) {
  // CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc16_ccitt(data), 0x29B1u);
}

TEST(Sha256, KnownVectors) {
  // SHA-256("") and SHA-256("abc") from FIPS 180-4.
  EXPECT_EQ(to_hex(sha256({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  const std::uint8_t abc[] = {'a', 'b', 'c'};
  EXPECT_EQ(to_hex(sha256(abc)),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, MultiBlockMessage) {
  // 200 'a' bytes crosses multiple 64-byte blocks.
  std::vector<std::uint8_t> data(200, 'a');
  Sha256 incremental;
  incremental.update(std::span(data.data(), 77));
  incremental.update(std::span(data.data() + 77, data.size() - 77));
  EXPECT_EQ(incremental.digest(), sha256(data));
}

TEST(Bits, MaskAndTruncate) {
  EXPECT_EQ(bit_mask(0), 0u);
  EXPECT_EQ(bit_mask(1), 1u);
  EXPECT_EQ(bit_mask(32), 0xFFFFFFFFull);
  EXPECT_EQ(bit_mask(64), ~0ULL);
  EXPECT_EQ(truncate(0x1FF, 8), 0xFFu);
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(sign_extend(0xFF, 8), -1);
  EXPECT_EQ(sign_extend(0x7F, 8), 127);
  EXPECT_EQ(sign_extend(0x80, 8), -128);
  EXPECT_EQ(sign_extend(0xFFFFFFFF, 32), -1);
  EXPECT_EQ(sign_extend(5, 32), 5);
  EXPECT_EQ(sign_extend(~0ULL, 64), -1);
}

TEST(Bits, BitWidthOf) {
  EXPECT_EQ(bit_width_of(0), 1u);
  EXPECT_EQ(bit_width_of(1), 1u);
  EXPECT_EQ(bit_width_of(2), 2u);
  EXPECT_EQ(bit_width_of(255), 8u);
  EXPECT_EQ(bit_width_of(256), 9u);
}

TEST(Bits, Parity) {
  EXPECT_FALSE(parity(0));
  EXPECT_TRUE(parity(1));
  EXPECT_TRUE(parity(0x8000000000000000ull));
  EXPECT_FALSE(parity(0x3));
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool differs = false;
  for (int i = 0; i < 10; ++i) {
    if (a.next_u64() != b.next_u64()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, BoundedDraws) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    const auto v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Strings, SplitAndTrim) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(trim("  hello \n"), "hello");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, Format) {
  EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(format("%05u", 7u), "00007");
}

TEST(Strings, JoinAndAffixes) {
  EXPECT_EQ(join({"a", "b", "c"}, "::"), "a::b::c");
  EXPECT_TRUE(starts_with("hermes", "her"));
  EXPECT_FALSE(starts_with("her", "hermes"));
  EXPECT_TRUE(ends_with("bitstream.bin", ".bin"));
}

TEST(Xml, NestedDocumentWithEscaping) {
  XmlWriter xml;
  xml.begin_element("lib");
  xml.attribute("name", "a<b&\"c\"");
  xml.begin_element("cell");
  xml.attribute("width", std::int64_t{32});
  xml.text("payload");
  xml.end_element();
  xml.end_element();
  const std::string doc = xml.str();
  EXPECT_NE(doc.find("a&lt;b&amp;&quot;c&quot;"), std::string::npos);
  EXPECT_NE(doc.find("<cell width=\"32\">"), std::string::npos);
  EXPECT_NE(doc.find("</lib>"), std::string::npos);
}

TEST(Xml, EmptyElementSelfCloses) {
  XmlWriter xml;
  xml.begin_element("root");
  xml.empty_element("leaf", {{"k", "v"}});
  xml.end_element();
  EXPECT_NE(xml.str().find("<leaf k=\"v\"/>"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ThreadPool::run_queue — the compile service's drain primitive
// ---------------------------------------------------------------------------

/// Thread-safe pop-then-run counter queue: pull() claims one of `total`
/// tickets and records it, returning false once the tickets run out.
struct TicketQueue {
  explicit TicketQueue(int total) : remaining(total) {}
  bool pull() {
    std::lock_guard<std::mutex> lock(mutex);
    if (remaining == 0) return false;
    claimed.push_back(--remaining);
    return true;
  }
  std::mutex mutex;
  int remaining;
  std::vector<int> claimed;
};

TEST(ThreadPoolRunQueue, InlineWithZeroWorkersDrainsEverything) {
  ThreadPool pool(0);
  TicketQueue queue(100);
  pool.run_queue([&] { return queue.pull(); });
  EXPECT_EQ(queue.claimed.size(), 100u);
  EXPECT_EQ(queue.remaining, 0);
}

TEST(ThreadPoolRunQueue, PooledDrainsEveryTicketExactlyOnce) {
  ThreadPool pool(4);
  TicketQueue queue(1000);
  pool.run_queue([&] { return queue.pull(); });
  ASSERT_EQ(queue.claimed.size(), 1000u);
  std::vector<bool> seen(1000, false);
  for (const int ticket : queue.claimed) {
    ASSERT_FALSE(seen[static_cast<std::size_t>(ticket)])
        << "ticket " << ticket << " claimed twice";
    seen[static_cast<std::size_t>(ticket)] = true;
  }
}

TEST(ThreadPoolRunQueue, EmptyQueueReturnsImmediately) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.run_queue([&] {
    ++calls;
    return false;
  });
  // Every participant observes the drained queue at most once.
  EXPECT_GE(calls.load(), 1);
  EXPECT_LE(calls.load(), 3);
}

TEST(ThreadPoolRunQueue, ReusableAcrossSubmissions) {
  ThreadPool pool(2);
  for (int round = 0; round < 5; ++round) {
    TicketQueue queue(50);
    pool.run_queue([&] { return queue.pull(); });
    EXPECT_EQ(queue.claimed.size(), 50u) << "round " << round;
  }
}

}  // namespace
}  // namespace hermes
