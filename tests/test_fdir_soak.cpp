// FDIR chaos soak: seeded fault storms driven through the full
// detect → isolate → recover pipeline, each family run twice per seed with
// the supervisor report fingerprint as the equality witness. The soak proves
// the two properties the tier-1 tests cannot: the pipeline is deterministic
// under sustained storms (rollbacks, re-armed injectors and all), and no
// storm ever produces a silent corruption.
//
// Families:
//   * rollback storm            — persistent configuration rot forces the
//                                 ladder through repeated rollbacks;
//   * quarantine under load     — programming-path upsets + a faulted
//                                 dataflow mission publish onto one bus, the
//                                 supervisor isolates per layer;
//   * checkpoint-ring exhaustion — checkpoints refused under dirt plus a
//                                 starved ring drive the ladder cleanly into
//                                 safe mode instead of thrashing.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "boot/bl.hpp"
#include "dataflow/taskgraph.hpp"
#include "fault/injector.hpp"
#include "fdir/supervisor.hpp"
#include "nxmap/bitstream.hpp"
#include "soak_util.hpp"

namespace hermes::fdir {
namespace {

using soak::kFnvBasis;
using soak::mix;

constexpr std::uint64_t kRollbackSeeds = 16;
constexpr std::uint64_t kQuarantineSeeds = 10;
constexpr std::uint64_t kRingSeeds = 16;

std::vector<std::uint8_t> soak_bitstream() {
  std::vector<nx::BitstreamFrame> frames(3);
  for (std::size_t f = 0; f < frames.size(); ++f) {
    frames[f].column = static_cast<std::uint32_t>(2 * f);
    for (std::size_t w = 0; w < 6 + f * 3; ++w) {
      frames[f].words.push_back(
          static_cast<std::uint32_t>((f << 24) ^ (w * 0x01000193u) ^ 0xC3));
    }
  }
  return nx::pack_raw_bitstream(/*device_id=*/0xE0E0, frames);
}

void stage_efpga_boot(boot::BootEnvironment& env) {
  std::vector<std::uint8_t> bl1(1024);
  for (std::size_t i = 0; i < bl1.size(); ++i) {
    bl1[i] = static_cast<std::uint8_t>(i * 11 + 3);
  }
  boot::LoadList list;
  boot::LoadEntry fpga;
  fpga.kind = boot::LoadKind::kBitstream;
  fpga.name = "matrix";
  fpga.dest_addr = boot::MemoryMap::kDdrBase + 0x10000;
  list.entries.push_back(fpga);
  boot::LoadEntry app;
  app.kind = boot::LoadKind::kBl2;
  app.name = "app";
  app.dest_addr = boot::MemoryMap::kDdrBase;
  list.entries.push_back(app);
  std::vector<std::vector<std::uint8_t>> images = {
      soak_bitstream(), std::vector<std::uint8_t>(2048, 0x5A)};
  boot::stage_boot_media(env, bl1, list, images);
}

/// Fingerprint of everything the supervised mission observed: the audit
/// trail, the surviving SoC, and the injection record.
std::uint64_t mission_fingerprint(const FdirSupervisor& supervisor,
                                  const boot::Soc& soc,
                                  const fault::FaultInjector& injector) {
  std::uint64_t hash = kFnvBasis;
  hash = mix(hash, supervisor.report().fingerprint());
  hash = mix(hash, static_cast<std::uint64_t>(supervisor.mode()));
  hash = mix(hash, soc.efpga_config_digest());
  hash = mix(hash, soc.efpga_stats().scrub_passes);
  hash = mix(hash, soc.efpga_stats().scrub_corrected);
  hash = mix(hash, soc.efpga_stats().scrub_uncorrectable);
  hash = mix(hash, soc.efpga_stats().frames_reprogrammed);
  hash = mix(hash, injector.total_fires());
  return hash;
}

// ---------------------------------------------------------------------------
// Family 1: rollback storm
// ---------------------------------------------------------------------------

std::uint64_t run_rollback_storm_once(const boot::SocSnapshot& base,
                                      std::uint64_t clean_digest,
                                      std::uint64_t seed) {
  fault::FaultPlan rot;
  rot.points.push_back({"efpga.config.rot", {.probability = 1.0}});
  fault::FaultInjector injector;
  boot::Soc soc = boot::Soc::fork(base, injector, rot, seed);

  FdirBus bus(4096);
  FdirConfig config;
  config.max_restart_attempts = 0;  // every trigger exercises the rollback rung
  config.max_rollbacks = 4;
  config.checkpoint_ring = 2;
  FdirSupervisor supervisor(config, bus);
  supervisor.attach_soc(&soc, &injector, rot);
  EXPECT_TRUE(supervisor.checkpoint().ok());

  for (int pass = 0; pass < 24; ++pass) {
    (void)soc.scrub_efpga();
    supervisor.poll();
    if (supervisor.mode() == FdirMode::kSafe) break;
  }

  // No storm may rot the configuration silently, and every successful
  // rollback must land digest-identical on the checkpointed state.
  EXPECT_EQ(soc.efpga_stats().scrub_silent, 0u) << "seed " << seed;
  if (supervisor.mode() != FdirMode::kSafe &&
      supervisor.report().rollbacks > 0) {
    EXPECT_EQ(soc.efpga_config_digest(), clean_digest) << "seed " << seed;
  }
  return mission_fingerprint(supervisor, soc, injector);
}

TEST(FdirSoak, RollbackStormDeterministic) {
  boot::BootEnvironment env;
  stage_efpga_boot(env);
  ASSERT_TRUE(boot::run_boot_chain(env).status.ok());
  ASSERT_TRUE(env.soc.efpga_programmed);
  const boot::SocSnapshot base = env.soc.snapshot();
  const std::uint64_t clean_digest = env.soc.efpga_config_digest();

  std::uint64_t rollbacks_seen = 0;
  for (std::uint64_t seed = 1; seed <= kRollbackSeeds; ++seed) {
    const std::uint64_t a = run_rollback_storm_once(base, clean_digest, seed);
    const std::uint64_t b = run_rollback_storm_once(base, clean_digest, seed);
    ASSERT_EQ(a, b) << "seed " << seed << " is not deterministic";
    rollbacks_seen += (a != kFnvBasis) ? 1 : 0;
  }
  // The storm must be a real one: rot at probability 1.0 forces rollbacks on
  // every seed, so every fingerprint reflects a mission that recovered.
  EXPECT_EQ(rollbacks_seen, kRollbackSeeds);
}

// ---------------------------------------------------------------------------
// Family 2: quarantine under load
// ---------------------------------------------------------------------------

constexpr std::string_view kProgPoints[] = {
    "efpga.prog.header.corrupt", "efpga.prog.frame.corrupt",
    "efpga.prog.frame.drop", "efpga.config.rot"};
constexpr std::string_view kDfPoints[] = {
    "df.node.transient", "df.node.overrun", "df.node.permanent"};

std::uint64_t run_quarantine_once(std::uint64_t seed) {
  fault::FaultInjector boot_injector(
      fault::make_random_plan(seed, kProgPoints));
  boot::BootEnvironment env;
  env.attach_injector(&boot_injector);
  FdirBus bus(4096);
  // Wired before boot: the programming path publishes its whole ladder
  // (retries, exhaustion) while the chain runs; the supervisor consumes the
  // backlog afterwards, in arrival order.
  env.soc.attach_fdir(&bus);
  stage_efpga_boot(env);
  const boot::BootResult result = boot::run_boot_chain(env);
  EXPECT_TRUE(result.status.ok() || !result.status.to_string().empty());

  FdirConfig config;
  config.policy.rate_threshold = 12;
  FdirSupervisor supervisor(config, bus);
  supervisor.attach_soc(&env.soc, &boot_injector,
                        fault::make_random_plan(seed, kProgPoints));
  supervisor.poll();

  // Degraded-mode load: a faulted dataflow mission publishing onto the same
  // bus. When the supervisor already degraded, it flies the shed subgraph —
  // the degraded mission keeps its critical pipeline.
  fault::FaultInjector df_injector(fault::make_random_plan(seed, kDfPoints));
  df::TaskGraph graph;
  const std::size_t src = graph.add_task({"src", 1 + seed % 3, 0, 2, 10});
  const std::size_t work = graph.add_task({"work", 3 + seed % 5, 0, 4, 50});
  const std::size_t sink = graph.add_task({"sink", 2, 0, 2, 10});
  df::Task diag{"diag", 4 + seed % 7, 0, 3, 30};
  diag.critical = false;
  const std::size_t d = graph.add_task(diag);
  graph.connect(src, work);
  graph.connect(work, sink);
  graph.connect(work, d);
  graph.sources = {src};
  graph.sinks = {sink, d};

  df::DataflowOptions options;
  options.injector = &df_injector;
  options.fdir = &bus;
  df::DataflowStats stats;
  options.stats_out = &stats;
  const df::TaskGraph mission = supervisor.mode() == FdirMode::kNominal
                                    ? graph
                                    : df::shed_non_critical(graph);
  const auto run = df::simulate_dataflow(mission, 4 + seed % 4, options);
  EXPECT_TRUE(run.ok() || !run.status().to_string().empty());
  supervisor.poll();

  EXPECT_EQ(env.soc.efpga_stats().scrub_silent, 0u) << "seed " << seed;
  std::uint64_t hash = mission_fingerprint(supervisor, env.soc, boot_injector);
  hash = mix(hash, static_cast<std::uint64_t>(result.status.code()));
  hash = mix(hash, supervisor.efpga_quarantined() ? 1u : 0u);
  hash = mix(hash, mission.tasks.size());
  hash = mix(hash, run.ok() ? 0u : static_cast<std::uint64_t>(run.status().code()));
  hash = mix(hash, stats.makespan);
  hash = mix(hash, stats.node_retries);
  hash = mix(hash, stats.node_failures);
  hash = mix(hash, df_injector.total_fires());
  return hash;
}

TEST(FdirSoak, QuarantineUnderLoadDeterministic) {
  for (std::uint64_t seed = 1; seed <= kQuarantineSeeds; ++seed) {
    const std::uint64_t a = run_quarantine_once(seed);
    const std::uint64_t b = run_quarantine_once(seed);
    ASSERT_EQ(a, b) << "seed " << seed << " is not deterministic";
  }
}

// ---------------------------------------------------------------------------
// Family 3: checkpoint-ring exhaustion
// ---------------------------------------------------------------------------

std::uint64_t run_ring_exhaustion_once(const boot::SocSnapshot& base,
                                       std::uint64_t seed, bool* reached_safe) {
  fault::FaultPlan rot;
  rot.points.push_back({"efpga.config.rot", {.probability = 1.0}});
  fault::FaultInjector injector;
  boot::Soc soc = boot::Soc::fork(base, injector, rot, seed);

  FdirBus bus(4096);
  FdirConfig config;
  config.max_restart_attempts = 0;
  config.max_rollbacks = 1;    // a single restore, then the ladder is out
  config.checkpoint_ring = 1;  // starved ring
  FdirSupervisor supervisor(config, bus);
  supervisor.attach_soc(&soc, &injector, rot);
  EXPECT_TRUE(supervisor.checkpoint().ok());

  // Storm until the ladder exhausts: checkpoint attempts under dirt are
  // refused (never freezing rot into the ring), the rollback budget drains,
  // and the mission parks in safe mode instead of thrashing.
  for (int pass = 0; pass < 40 && supervisor.mode() != FdirMode::kSafe;
       ++pass) {
    (void)soc.scrub_efpga();
    (void)supervisor.checkpoint();  // mostly refused: the state is dirty
    supervisor.poll();
  }

  EXPECT_EQ(soc.efpga_stats().scrub_silent, 0u) << "seed " << seed;
  const FdirReport& report = supervisor.report();
  if (supervisor.mode() == FdirMode::kSafe) {
    *reached_safe = true;
    // Safe mode was a clean landing: exactly one entry, accelerator parked,
    // the final rollback decision recorded as failed (its ring was spent).
    EXPECT_EQ(report.safe_mode_entries, 1u) << "seed " << seed;
    EXPECT_TRUE(supervisor.efpga_quarantined()) << "seed " << seed;
    EXPECT_LE(report.rollbacks,
              static_cast<std::uint64_t>(config.max_rollbacks))
        << "seed " << seed;
  }
  std::uint64_t hash = mission_fingerprint(supervisor, soc, injector);
  hash = mix(hash, supervisor.checkpoints().stats().refused);
  hash = mix(hash, supervisor.checkpoints().stats().taken);
  return hash;
}

TEST(FdirSoak, CheckpointRingExhaustionLandsSafeDeterministically) {
  boot::BootEnvironment env;
  stage_efpga_boot(env);
  ASSERT_TRUE(boot::run_boot_chain(env).status.ok());
  const boot::SocSnapshot base = env.soc.snapshot();

  std::uint64_t safe_landings = 0;
  for (std::uint64_t seed = 1; seed <= kRingSeeds; ++seed) {
    bool safe_a = false, safe_b = false;
    const std::uint64_t a = run_ring_exhaustion_once(base, seed, &safe_a);
    const std::uint64_t b = run_ring_exhaustion_once(base, seed, &safe_b);
    ASSERT_EQ(a, b) << "seed " << seed << " is not deterministic";
    ASSERT_EQ(safe_a, safe_b);
    safe_landings += safe_a ? 1 : 0;
  }
  // Rot at probability 1.0 with one rollback and a starved ring must drive
  // most seeds all the way down the ladder.
  EXPECT_GT(safe_landings, kRingSeeds / 2);
}

}  // namespace
}  // namespace hermes::fdir
