// Tests for copy-on-write SoC state forking (Soc::snapshot / Soc::fork).
//
// Chaos campaigns fork one booted system instead of re-running the boot
// chain per plan, so the contract under test is: a fork is indistinguishable
// from a freshly booted SoC (same memory bytes, same eFPGA configuration
// digest, same stats), forks are isolated from each other and from the
// original, and a snapshot is immutable — it preserves the state at the
// moment it was taken, not the state the original drifted to afterwards.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "boot/bl.hpp"
#include "fault/injector.hpp"
#include "hls/eucalyptus.hpp"
#include "hls/flow.hpp"
#include "nxmap/flow.hpp"

namespace hermes::boot {
namespace {

std::vector<std::uint8_t> pattern_image(std::size_t bytes, std::uint8_t seed) {
  std::vector<std::uint8_t> image(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    image[i] = static_cast<std::uint8_t>(seed + i * 7);
  }
  return image;
}

/// Boots a full chain with a real backend bitstream in the load list, so the
/// booted SoC carries DDR payloads, an SRAM boot report and a programmed
/// eFPGA — every kind of state a fork must reproduce.
BootResult boot_with_efpga(BootEnvironment& env) {
  hls::FlowOptions options;
  options.top = "f";
  auto flow = hls::run_flow("int f(int a) { return a * 3 + 1; }", options);
  EXPECT_TRUE(flow.ok());
  const nx::NxDevice device = nx::make_device(hls::ng_ultra());
  auto backend = nx::run_backend(flow.value().fsmd.module, device);
  EXPECT_TRUE(backend.ok());

  LoadList list;
  LoadEntry bs;
  bs.kind = LoadKind::kBitstream;
  bs.name = "accel";
  LoadEntry sw;
  sw.kind = LoadKind::kSoftware;
  sw.name = "payload";
  sw.dest_addr = MemoryMap::kDdrBase + 0x1000;
  LoadEntry bl2;
  bl2.kind = LoadKind::kBl2;
  bl2.name = "bl2";
  bl2.dest_addr = MemoryMap::kDdrBase;
  list.entries = {bs, sw, bl2};
  stage_boot_media(env, pattern_image(4096, 0x11), list,
                   {backend.value().bitstream, pattern_image(2048, 0x22),
                    pattern_image(1024, 0x33)});
  return run_boot_chain(env);
}

void expect_same_stats(const EfpgaStats& a, const EfpgaStats& b) {
  EXPECT_EQ(a.frames_programmed, b.frames_programmed);
  EXPECT_EQ(a.frame_crc_mismatches, b.frame_crc_mismatches);
  EXPECT_EQ(a.frame_rewrites, b.frame_rewrites);
  EXPECT_EQ(a.header_rewrites, b.header_rewrites);
  EXPECT_EQ(a.prog_failures, b.prog_failures);
  EXPECT_EQ(a.scrub_passes, b.scrub_passes);
  EXPECT_EQ(a.scrub_corrected, b.scrub_corrected);
  EXPECT_EQ(a.scrub_uncorrectable, b.scrub_uncorrectable);
  EXPECT_EQ(a.frames_reprogrammed, b.frames_reprogrammed);
  EXPECT_EQ(a.scrub_silent, b.scrub_silent);
}

std::vector<std::uint8_t> read_range(const Soc& soc, std::uint64_t addr,
                                     std::size_t bytes) {
  std::vector<std::uint8_t> out(bytes);
  EXPECT_TRUE(soc.read_bytes(addr, out).ok());
  return out;
}

TEST(SocFork, ForkedBootEqualsFreshBoot) {
  BootEnvironment booted;
  ASSERT_TRUE(boot_with_efpga(booted).status.ok());
  const SocSnapshot snapshot = booted.soc.snapshot();
  Soc fork = Soc::fork(snapshot);

  // A second, independently booted environment is the baseline the fork
  // must be indistinguishable from (the chain is deterministic without an
  // injector).
  BootEnvironment fresh;
  ASSERT_TRUE(boot_with_efpga(fresh).status.ok());

  EXPECT_EQ(fork.efpga_config_digest(), fresh.soc.efpga_config_digest());
  expect_same_stats(fork.efpga_stats(), fresh.soc.efpga_stats());
  EXPECT_EQ(fork.efpga_programmed, fresh.soc.efpga_programmed);
  EXPECT_EQ(fork.efpga_frames, fresh.soc.efpga_frames);
  EXPECT_EQ(fork.efpga_device_id, fresh.soc.efpga_device_id);
  EXPECT_EQ(fork.cpu0_initialized, fresh.soc.cpu0_initialized);
  EXPECT_EQ(fork.ddr_ready, fresh.soc.ddr_ready);
  EXPECT_EQ(fork.tcm_enabled, fresh.soc.tcm_enabled);
  EXPECT_EQ(fork.mpu_enabled, fresh.soc.mpu_enabled);
  EXPECT_EQ(fork.cores_released, fresh.soc.cores_released);

  // Memory contents: deployed payload, BL2 image, serialized boot report.
  EXPECT_EQ(read_range(fork, MemoryMap::kDdrBase + 0x1000, 2048),
            read_range(fresh.soc, MemoryMap::kDdrBase + 0x1000, 2048));
  EXPECT_EQ(read_range(fork, MemoryMap::kDdrBase, 1024),
            read_range(fresh.soc, MemoryMap::kDdrBase, 1024));
  EXPECT_EQ(read_range(fork, kBootReportAddr, 0x1000),
            read_range(fresh.soc, kBootReportAddr, 0x1000));

  // The fork still shares its pages with the booted original — state was
  // replicated by reference, not by copying megabytes.
  EXPECT_GT(fork.pages_shared_with(booted.soc), 0u);
}

TEST(SocFork, ForksAreIsolated) {
  BootEnvironment booted;
  ASSERT_TRUE(boot_with_efpga(booted).status.ok());
  const SocSnapshot snapshot = booted.soc.snapshot();
  Soc fork_a = Soc::fork(snapshot);
  Soc fork_b = Soc::fork(snapshot);

  const std::uint64_t addr = MemoryMap::kDdrBase + 0x2000;
  const std::vector<std::uint8_t> before = read_range(fork_b, addr, 256);
  ASSERT_TRUE(fork_a.write_bytes(addr, pattern_image(256, 0xA5)).ok());

  // fork_a sees its write; fork_b and the original are untouched.
  EXPECT_EQ(read_range(fork_a, addr, 256), pattern_image(256, 0xA5));
  EXPECT_EQ(read_range(fork_b, addr, 256), before);
  EXPECT_EQ(read_range(booted.soc, addr, 256), before);

  // eFPGA configuration is isolated the same way: rot + scrub one fork
  // under injection; the sibling's digest and stats must not move. (The
  // boot chain itself runs scrub passes, so compare against the forked
  // baseline, not zero.)
  const std::uint64_t digest_before = fork_b.efpga_config_digest();
  const std::uint64_t passes_before = fork_b.efpga_stats().scrub_passes;
  fault::FaultPlan plan;
  plan.seed = 42;
  plan.points.push_back({"efpga.config.rot", {.probability = 1.0}});
  fault::FaultInjector injector(plan);
  fork_a.attach_injector(&injector);
  for (int pass = 0; pass < 4; ++pass) fork_a.scrub_efpga();
  EXPECT_GT(fork_a.efpga_stats().scrub_corrected +
                fork_a.efpga_stats().scrub_uncorrectable,
            0u);
  EXPECT_EQ(fork_b.efpga_config_digest(), digest_before);
  EXPECT_EQ(fork_b.efpga_stats().scrub_passes, passes_before);
  EXPECT_EQ(booted.soc.efpga_stats().scrub_passes, passes_before);
}

TEST(SocFork, SnapshotIsImmutableUnderOriginalMutation) {
  BootEnvironment booted;
  ASSERT_TRUE(boot_with_efpga(booted).status.ok());

  const std::uint64_t addr = MemoryMap::kDdrBase + 0x3000;
  ASSERT_TRUE(booted.soc.write_bytes(addr, pattern_image(512, 0x77)).ok());
  const SocSnapshot snapshot = booted.soc.snapshot();
  const std::uint64_t digest_at_snapshot = booted.soc.efpga_config_digest();
  const std::uint64_t passes_at_snapshot = booted.soc.efpga_stats().scrub_passes;

  // Drift the original: overwrite the range and mutate the configuration
  // via injected rot.
  ASSERT_TRUE(booted.soc.write_bytes(addr, pattern_image(512, 0xEE)).ok());
  fault::FaultPlan plan;
  plan.seed = 7;
  plan.points.push_back({"efpga.config.rot", {.probability = 1.0}});
  fault::FaultInjector injector(plan);
  booted.soc.attach_injector(&injector);
  for (int pass = 0; pass < 4; ++pass) booted.soc.scrub_efpga();

  // A fork taken now reproduces the snapshot-time state, not the drifted
  // one, and carries no injector attachment.
  Soc fork = Soc::fork(snapshot);
  EXPECT_EQ(read_range(fork, addr, 512), pattern_image(512, 0x77));
  EXPECT_EQ(fork.efpga_config_digest(), digest_at_snapshot);
  EXPECT_EQ(fork.efpga_stats().scrub_passes, passes_at_snapshot);
  const std::uint64_t fork_digest = fork.efpga_config_digest();
  fork.scrub_efpga();  // no injector: a clean scrub pass must not change it
  EXPECT_EQ(fork.efpga_config_digest(), fork_digest);
}

TEST(SocFork, InvalidSnapshotYieldsFreshSoc) {
  const SocSnapshot empty;
  EXPECT_FALSE(empty.valid());
  Soc fork = Soc::fork(empty);
  EXPECT_FALSE(fork.cpu0_initialized);
  EXPECT_FALSE(fork.efpga_programmed);
  EXPECT_EQ(fork.efpga_stats().frames_programmed, 0u);
}

TEST(SocFork, CowSharingShrinksOnlyWhereWritten) {
  BootEnvironment booted;
  ASSERT_TRUE(boot_with_efpga(booted).status.ok());
  const SocSnapshot snapshot = booted.soc.snapshot();
  Soc fork = Soc::fork(snapshot);

  const std::size_t shared_before = fork.pages_shared_with(booted.soc);
  ASSERT_GT(shared_before, 0u);
  // One byte dirties exactly one 4 KiB page.
  const std::uint8_t byte[1] = {0xFF};
  ASSERT_TRUE(fork.write_bytes(MemoryMap::kDdrBase + 0x1000, byte).ok());
  EXPECT_EQ(fork.pages_shared_with(booted.soc), shared_before - 1);
}

}  // namespace
}  // namespace hermes::boot
