// Tests for the C-subset lexer, parser and type checker.
#include <gtest/gtest.h>

#include "frontend/lexer.hpp"
#include "frontend/parser.hpp"
#include "frontend/typecheck.hpp"

namespace hermes::fe {
namespace {

TEST(Lexer, TokenKinds) {
  auto tokens = lex("int x = 0x1F + 42; // comment\n /* block */ x <<= 1;");
  ASSERT_TRUE(tokens.ok()) << tokens.status().to_string();
  const auto& t = tokens.value();
  EXPECT_EQ(t[0].kind, TokKind::kIdentifier);  // 'int' resolves in the parser
  EXPECT_EQ(t[0].text, "int");
  EXPECT_EQ(t[1].text, "x");
  EXPECT_EQ(t[2].kind, TokKind::kAssign);
  EXPECT_EQ(t[3].kind, TokKind::kIntLiteral);
  EXPECT_EQ(t[3].int_value, 0x1Fu);
  EXPECT_EQ(t[4].kind, TokKind::kPlus);
  EXPECT_EQ(t[5].int_value, 42u);
}

TEST(Lexer, IntegerSuffixesIgnored) {
  auto tokens = lex("1u 2UL 3ll 0xFFull");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].int_value, 1u);
  EXPECT_EQ(tokens.value()[1].int_value, 2u);
  EXPECT_EQ(tokens.value()[2].int_value, 3u);
  EXPECT_EQ(tokens.value()[3].int_value, 0xFFu);
}

TEST(Lexer, TracksLineNumbers) {
  auto tokens = lex("a\nb\n  c");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].loc.line, 1u);
  EXPECT_EQ(tokens.value()[1].loc.line, 2u);
  EXPECT_EQ(tokens.value()[2].loc.line, 3u);
}

TEST(Lexer, RejectsUnknownCharacter) {
  EXPECT_FALSE(lex("int a = `;").ok());
  EXPECT_FALSE(lex("/* unterminated").ok());
}

TEST(Lexer, TwoCharOperators) {
  auto tokens = lex("<= >= == != && || << >> += -= *= ++ --");
  ASSERT_TRUE(tokens.ok());
  const TokKind expect[] = {
      TokKind::kLe, TokKind::kGe, TokKind::kEqEq, TokKind::kNe,
      TokKind::kAmpAmp, TokKind::kPipePipe, TokKind::kShl, TokKind::kShr,
      TokKind::kPlusAssign, TokKind::kMinusAssign, TokKind::kStarAssign,
      TokKind::kPlusPlus, TokKind::kMinusMinus};
  for (std::size_t i = 0; i < std::size(expect); ++i) {
    EXPECT_EQ(tokens.value()[i].kind, expect[i]) << i;
  }
}

TEST(TypeNames, AllSupported) {
  Type type;
  EXPECT_TRUE(parse_type_name("int8_t", type));
  EXPECT_EQ(type.bits, 8u);
  EXPECT_TRUE(type.is_signed);
  EXPECT_TRUE(parse_type_name("uint64_t", type));
  EXPECT_EQ(type.bits, 64u);
  EXPECT_FALSE(type.is_signed);
  EXPECT_TRUE(parse_type_name("unsigned", type));
  EXPECT_EQ(type.bits, 32u);
  EXPECT_FALSE(parse_type_name("float", type));
  EXPECT_FALSE(parse_type_name("double", type));
}

TEST(Parser, FunctionWithParams) {
  auto program = parse("int f(int a, const uint8_t buf[16]) { return a; }");
  ASSERT_TRUE(program.ok()) << program.status().to_string();
  ASSERT_EQ(program.value().functions.size(), 1u);
  const FuncDecl& fn = program.value().functions[0];
  EXPECT_EQ(fn.name, "f");
  ASSERT_EQ(fn.params.size(), 2u);
  EXPECT_EQ(fn.params[0].array_size, 0u);
  EXPECT_EQ(fn.params[1].array_size, 16u);
  EXPECT_TRUE(fn.params[1].is_const);
  EXPECT_EQ(fn.params[1].type.bits, 8u);
}

TEST(Parser, VoidParameterList) {
  auto program = parse("int f(void) { return 1; }");
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(program.value().functions[0].params.empty());
}

TEST(Parser, OperatorPrecedence) {
  // 2 + 3 * 4 must parse as 2 + (3 * 4).
  auto program = parse("int f() { return 2 + 3 * 4; }");
  ASSERT_TRUE(program.ok());
  const auto& ret = static_cast<const ReturnStmt&>(
      *program.value().functions[0].body->body[0]);
  const auto& add = static_cast<const BinaryExpr&>(*ret.value);
  EXPECT_EQ(add.op, BinaryOp::kAdd);
  EXPECT_EQ(static_cast<const BinaryExpr&>(*add.rhs).op, BinaryOp::kMul);
}

TEST(Parser, ShiftVsRelationalPrecedence) {
  // a << 2 > b must parse as (a << 2) > b.
  auto program = parse("bool f(int a, int b) { return a << 2 > b; }");
  ASSERT_TRUE(program.ok());
  const auto& ret = static_cast<const ReturnStmt&>(
      *program.value().functions[0].body->body[0]);
  const auto& cmp = static_cast<const BinaryExpr&>(*ret.value);
  EXPECT_EQ(cmp.op, BinaryOp::kGt);
  EXPECT_EQ(static_cast<const BinaryExpr&>(*cmp.lhs).op, BinaryOp::kShl);
}

TEST(Parser, CompoundAssignDesugars) {
  auto program = parse("void f() { int x = 0; x += 5; }");
  ASSERT_TRUE(program.ok());
  const auto& stmt = static_cast<const ExprStmt&>(
      *program.value().functions[0].body->body[1]);
  ASSERT_EQ(stmt.expr->kind, Expr::Kind::kAssign);
  const auto& assign = static_cast<const AssignExpr&>(*stmt.expr);
  EXPECT_EQ(assign.value->kind, Expr::Kind::kBinary);
}

TEST(Parser, ArrayInitializer) {
  auto program = parse("void f() { int t[4] = {1, -2, 3}; }");
  ASSERT_TRUE(program.ok());
  const auto& decl = static_cast<const VarDeclStmt&>(
      *program.value().functions[0].body->body[0]);
  ASSERT_EQ(decl.array_init.size(), 3u);
  EXPECT_EQ(decl.array_init[1], static_cast<std::uint64_t>(-2));
}

TEST(Parser, ControlFlowForms) {
  auto program = parse(R"(
    void f(int n) {
      for (int i = 0; i < n; i = i + 1) { }
      while (n > 0) { n = n - 1; }
      do { n = n + 1; } while (n < 4);
      if (n == 4) { n = 0; } else { n = 1; }
      for (;;) { break; }
    }
  )");
  ASSERT_TRUE(program.ok()) << program.status().to_string();
}

TEST(Parser, TernaryAndCast) {
  auto program = parse("int f(int a) { return a > 0 ? (int16_t)a : -1; }");
  ASSERT_TRUE(program.ok()) << program.status().to_string();
}

TEST(Parser, RejectsMalformedInputs) {
  EXPECT_FALSE(parse("int f( { }").ok());
  EXPECT_FALSE(parse("int f() { return 1 }").ok());    // missing semicolon
  EXPECT_FALSE(parse("int f() { int a[x]; }").ok());   // non-const array size
  EXPECT_FALSE(parse("f() { }").ok());                  // missing return type
  EXPECT_FALSE(parse("int f() { if a { } }").ok());     // missing parens
}

// ---- type checker ----

Status check(std::string_view source) {
  auto program = parse(source);
  if (!program.ok()) return program.status();
  return typecheck(program.value());
}

TEST(Typecheck, AcceptsValidProgram) {
  EXPECT_TRUE(check(R"(
    int helper(int x) { return x * 2; }
    int top(int a, int b, int data[8]) {
      int acc = helper(a);
      for (int i = 0; i < 8; i = i + 1) {
        acc = acc + data[i] * b;
      }
      return acc;
    }
  )").ok());
}

TEST(Typecheck, UndeclaredVariable) {
  const Status status = check("int f() { return missing; }");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kTypeError);
}

TEST(Typecheck, Redeclaration) {
  EXPECT_FALSE(check("int f() { int a = 0; int a = 1; return a; }").ok());
}

TEST(Typecheck, ShadowingInNestedScopeAllowed) {
  EXPECT_TRUE(check("int f() { int a = 0; { int a = 1; a = a; } return a; }").ok());
}

TEST(Typecheck, ArrayUsedAsScalar) {
  EXPECT_FALSE(check("int f(int a[4]) { return a; }").ok());
}

TEST(Typecheck, ScalarIndexed) {
  EXPECT_FALSE(check("int f(int a) { return a[0]; }").ok());
}

TEST(Typecheck, AssignToArrayRejected) {
  EXPECT_FALSE(check("void f(int a[4]) { a = 0; }").ok());
}

TEST(Typecheck, ConstArrayWriteRejected) {
  EXPECT_FALSE(check("void f(const int a[4]) { a[0] = 1; }").ok());
}

TEST(Typecheck, CallArity) {
  EXPECT_FALSE(check("int g(int x) { return x; } int f() { return g(); }").ok());
  EXPECT_FALSE(check("int g(int x) { return x; } int f() { return g(1, 2); }").ok());
}

TEST(Typecheck, ArrayArgumentSizeMustMatch) {
  EXPECT_FALSE(check(R"(
    int g(int a[8]) { return a[0]; }
    int f(int b[4]) { return g(b); }
  )").ok());
}

TEST(Typecheck, UndefinedCallee) {
  EXPECT_FALSE(check("int f() { return nothere(1); }").ok());
}

TEST(Typecheck, RecursionRejected) {
  const Status direct = check("int f(int n) { return f(n - 1); }");
  EXPECT_FALSE(direct.ok());
  const Status mutual = check(R"(
    int a(int n) { return b(n); }
    int b(int n) { return a(n); }
  )");
  EXPECT_FALSE(mutual.ok());
}

TEST(Typecheck, BreakOutsideLoop) {
  EXPECT_FALSE(check("void f() { break; }").ok());
  EXPECT_FALSE(check("void f() { continue; }").ok());
}

TEST(Typecheck, ReturnTypeRules) {
  EXPECT_FALSE(check("void f() { return 1; }").ok());
  EXPECT_FALSE(check("int f() { return; }").ok());
}

TEST(Typecheck, UsualArithmeticConversions) {
  // Narrow types promote to int32; mixed signedness at equal width -> unsigned.
  const Type i8 = Type::Int(8, true);
  const Type u32 = Type::Int(32, false);
  const Type i64 = Type::Int(64, true);
  EXPECT_EQ(arithmetic_result(i8, i8), Type::Int(32, true));
  EXPECT_EQ(arithmetic_result(i8, u32), Type::Int(32, false));
  EXPECT_EQ(arithmetic_result(u32, i64), Type::Int(64, true));
  EXPECT_EQ(arithmetic_result(Type::Bool(), Type::Bool()), Type::Int(32, true));
}

TEST(Typecheck, ExpressionTypesAnnotated) {
  auto program = parse("bool f(int a, int b) { return a < b; }");
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(typecheck(program.value()).ok());
  const auto& ret = static_cast<const ReturnStmt&>(
      *program.value().functions[0].body->body[0]);
  EXPECT_EQ(ret.value->type, Type::Bool());
}

}  // namespace
}  // namespace hermes::fe

// Multi-dimensional array tests appended as a separate suite.
namespace hermes::fe {
namespace {

TEST(MultiDim, ParserCapturesDims) {
  auto program = parse("int f(int m[4][8], int v[8]) { return m[1][2] + v[3]; }");
  ASSERT_TRUE(program.ok()) << program.status().to_string();
  const FuncDecl& fn = program.value().functions[0];
  EXPECT_EQ(fn.params[0].dims, (std::vector<std::size_t>{4, 8}));
  EXPECT_EQ(fn.params[0].array_size, 32u);
  EXPECT_EQ(fn.params[1].dims, (std::vector<std::size_t>{8}));
  EXPECT_TRUE(typecheck(program.value()).ok());
}

TEST(MultiDim, DimensionCountEnforced) {
  auto too_few = parse("int f(int m[4][8]) { return m[1]; }");
  ASSERT_TRUE(too_few.ok());
  EXPECT_FALSE(typecheck(too_few.value()).ok());

  auto too_many = parse("int f(int v[8]) { return v[1][2]; }");
  ASSERT_TRUE(too_many.ok());
  EXPECT_FALSE(typecheck(too_many.value()).ok());
}

TEST(MultiDim, ArgumentDimsMustMatch) {
  // Same flattened size (32) but different shape: rejected.
  auto program = parse(R"(
    int g(int m[4][8]) { return m[0][0]; }
    int f(int m[8][4]) { return g(m); }
  )");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(typecheck(program.value()).ok());
}

TEST(MultiDim, LocalDeclarations) {
  auto program = parse(R"(
    int f() {
      int grid[3][3];
      for (int i = 0; i < 3; i = i + 1) {
        for (int j = 0; j < 3; j = j + 1) {
          grid[i][j] = i * 10 + j;
        }
      }
      return grid[2][1];
    }
  )");
  ASSERT_TRUE(program.ok()) << program.status().to_string();
  EXPECT_TRUE(typecheck(program.value()).ok());
}

}  // namespace
}  // namespace hermes::fe
