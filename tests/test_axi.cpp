// Tests for the AXI4 protocol model, slave memory, master engine and the
// AXI-wrapped HLS accelerator.
#include <gtest/gtest.h>

#include "axi/hls_axi.hpp"
#include "axi/master.hpp"
#include "axi/protocol.hpp"
#include "axi/slave_memory.hpp"
#include "common/rng.hpp"

namespace hermes::axi {
namespace {

TEST(Protocol, BeatAddressIncr) {
  AddrBeat ab;
  ab.addr = 0x104;
  ab.len = 3;
  ab.size_log2 = 2;
  ab.burst = Burst::kIncr;
  EXPECT_EQ(beat_address(ab, 0), 0x104u);
  EXPECT_EQ(beat_address(ab, 1), 0x108u);
  EXPECT_EQ(beat_address(ab, 3), 0x110u);
}

TEST(Protocol, BeatAddressFixed) {
  AddrBeat ab;
  ab.addr = 0x200;
  ab.len = 7;
  ab.burst = Burst::kFixed;
  EXPECT_EQ(beat_address(ab, 0), 0x200u);
  EXPECT_EQ(beat_address(ab, 7), 0x200u);
}

TEST(Protocol, BeatAddressWrap) {
  AddrBeat ab;
  ab.addr = 0x108;
  ab.len = 3;  // 4 beats of 4 bytes: 16-byte container starting at 0x100
  ab.size_log2 = 2;
  ab.burst = Burst::kWrap;
  EXPECT_EQ(beat_address(ab, 0), 0x108u);
  EXPECT_EQ(beat_address(ab, 1), 0x10Cu);
  EXPECT_EQ(beat_address(ab, 2), 0x100u);  // wrapped
  EXPECT_EQ(beat_address(ab, 3), 0x104u);
}

TEST(Protocol, BurstValidation) {
  AddrBeat ok;
  ok.addr = 0x0;
  ok.len = 255;
  ok.burst = Burst::kIncr;
  EXPECT_TRUE(validate_burst(ok).ok());

  AddrBeat crosses;
  crosses.addr = 4096 - 8;
  crosses.len = 3;  // 16 bytes from 4KB-8 crosses the boundary
  crosses.burst = Burst::kIncr;
  EXPECT_FALSE(validate_burst(crosses).ok());

  AddrBeat bad_wrap;
  bad_wrap.len = 2;  // 3 beats: illegal for WRAP
  bad_wrap.burst = Burst::kWrap;
  EXPECT_FALSE(validate_burst(bad_wrap).ok());

  AddrBeat long_fixed;
  long_fixed.len = 31;
  long_fixed.burst = Burst::kFixed;
  EXPECT_FALSE(validate_burst(long_fixed).ok());
}

TEST(Protocol, SplitTransferCoversRangeLegally) {
  Rng rng(17);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint64_t addr = rng.next_below(20000);
    const std::uint64_t bytes = 1 + rng.next_below(9000);
    const auto bursts = split_transfer(addr, bytes, 2);
    ASSERT_FALSE(bursts.empty());
    // Every burst legal, contiguous coverage of the beat range.
    std::uint64_t cursor = (addr / 4) * 4;
    for (const AddrBeat& ab : bursts) {
      EXPECT_TRUE(validate_burst(ab).ok());
      EXPECT_EQ(ab.addr, cursor);
      cursor += (static_cast<std::uint64_t>(ab.len) + 1) * 4;
    }
    EXPECT_GE(cursor, addr + bytes);
    EXPECT_LT(cursor - 4, addr + bytes + 4);
  }
}

TEST(SlaveMemory, ReadAfterLatency) {
  AxiSlaveMemory mem(1024, {.read_latency = 5, .write_latency = 3,
                            .cycles_per_beat = 1, .max_outstanding = 2});
  mem.poke_word(0x40, 0xCAFEBABE, 4);
  AddrBeat ar;
  ar.addr = 0x40;
  ar.len = 0;
  ASSERT_TRUE(mem.push_read(ar));
  ReadBeat rb;
  // Not ready before the latency elapses.
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(mem.pop_read_beat(rb));
    mem.tick();
  }
  ASSERT_TRUE(mem.pop_read_beat(rb));
  EXPECT_EQ(rb.data, 0xCAFEBABEu);
  EXPECT_TRUE(rb.last);
  EXPECT_EQ(rb.resp, Resp::kOkay);
}

TEST(SlaveMemory, OutstandingLimit) {
  AxiSlaveMemory mem(1024, {.read_latency = 100, .write_latency = 3,
                            .cycles_per_beat = 1, .max_outstanding = 2});
  AddrBeat ar;
  ar.len = 0;
  EXPECT_TRUE(mem.push_read(ar));
  EXPECT_TRUE(mem.push_read(ar));
  EXPECT_FALSE(mem.push_read(ar));  // queue full
}

TEST(SlaveMemory, WriteStrobes) {
  AxiSlaveMemory mem(64, {});
  mem.poke_word(0, 0xAABBCCDD, 4);
  AddrBeat aw;
  aw.addr = 0;
  aw.len = 0;
  WriteBeat wb;
  wb.data = 0x11223344;
  wb.strb = 0b0101;  // only lanes 0 and 2
  wb.last = true;
  ASSERT_TRUE(mem.push_write(aw, {wb}));
  for (int i = 0; i < 20; ++i) mem.tick();
  Resp resp;
  unsigned id;
  ASSERT_TRUE(mem.pop_write_resp(resp, id));
  EXPECT_EQ(resp, Resp::kOkay);
  EXPECT_EQ(mem.peek_word(0, 4), 0xAA22CC44u);
}

TEST(SlaveMemory, DecodeErrorOutsideRange) {
  AxiSlaveMemory mem(64, {.read_latency = 1, .write_latency = 1,
                          .cycles_per_beat = 1, .max_outstanding = 4});
  AddrBeat ar;
  ar.addr = 1024;
  ar.len = 0;
  ASSERT_TRUE(mem.push_read(ar));
  mem.tick();
  ReadBeat rb;
  ASSERT_TRUE(mem.pop_read_beat(rb));
  EXPECT_EQ(rb.resp, Resp::kDecErr);
}

TEST(Master, RoundTripAlignedAndUnaligned) {
  Rng rng(23);
  AxiSlaveMemory mem(8192, {});
  AxiMaster master(mem);
  for (const std::uint64_t addr : {0ull, 3ull, 4095ull, 4097ull}) {
    std::vector<std::uint8_t> data(515);
    for (auto& byte : data) byte = static_cast<std::uint8_t>(rng.next_u64());
    master.write(addr, data);
    std::vector<std::uint8_t> readback(data.size());
    master.read(addr, readback);
    EXPECT_EQ(readback, data) << "addr " << addr;
  }
  EXPECT_GT(master.stats().bursts, 0u);
  EXPECT_EQ(master.stats().bytes_read, master.stats().bytes_written);
}

TEST(Master, UnalignedWritePreservesNeighbors) {
  AxiSlaveMemory mem(64, {});
  AxiMaster master(mem);
  for (std::size_t i = 0; i < 16; ++i) mem.poke(i, 0xEE);
  const std::uint8_t payload[3] = {1, 2, 3};
  master.write(5, payload);
  EXPECT_EQ(mem.peek(4), 0xEE);
  EXPECT_EQ(mem.peek(5), 1);
  EXPECT_EQ(mem.peek(7), 3);
  EXPECT_EQ(mem.peek(8), 0xEE);
}

TEST(Master, BurstBeatsSingleBeatOnThroughput) {
  // Moving 1 KiB: one burst read vs 256 single-word reads.
  MemoryTiming timing{.read_latency = 12, .write_latency = 8,
                      .cycles_per_beat = 1, .max_outstanding = 4};
  AxiSlaveMemory mem_a(4096, timing), mem_b(4096, timing);
  AxiMaster burst(mem_a), single(mem_b);

  std::vector<std::uint8_t> buffer(1024);
  burst.read(0, buffer);
  const std::uint64_t burst_cycles = burst.stats().cycles;

  for (int i = 0; i < 256; ++i) single.read_word(i * 4, 4);
  const std::uint64_t single_cycles = single.stats().cycles;

  EXPECT_LT(burst_cycles * 2, single_cycles)
      << "bursts must amortize the transaction latency";
}

TEST(HlsAxi, CosimMatchesAndModesDiffer) {
  const char* source = R"(
    void scale(int32_t data[32], int factor) {
      for (int i = 0; i < 32; i = i + 1) {
        data[i] = data[i] * factor + 1;
      }
    }
  )";
  hls::FlowOptions options;
  options.top = "scale";
  auto flow = hls::run_flow(source, options);
  ASSERT_TRUE(flow.ok()) << flow.status().to_string();

  const AxiMap map = default_axi_map(flow.value().function);
  ASSERT_TRUE(map.base_addr.count(0));

  for (AxiMode mode : {AxiMode::kDmaBurst, AxiMode::kPerAccess}) {
    AxiSlaveMemory ddr(1 << 16, {});
    for (std::size_t i = 0; i < 32; ++i) {
      ddr.poke_word(map.base_addr.at(0) + i * 4, i * 3, 4);
    }
    auto run = run_with_axi(flow.value(), {7}, ddr, map, mode);
    ASSERT_TRUE(run.ok()) << run.status().to_string();
    EXPECT_TRUE(run.value().match) << run.value().mismatch;
    EXPECT_GT(run.value().transfer_cycles, 0u);
    // Verify the DDR contents explicitly as well.
    for (std::size_t i = 0; i < 32; ++i) {
      EXPECT_EQ(ddr.peek_word(map.base_addr.at(0) + i * 4, 4),
                static_cast<std::uint32_t>(i * 3 * 7 + 1));
    }
  }
}

TEST(HlsAxi, PerAccessSlowerThanDma) {
  const char* source = R"(
    int32_t acc(int32_t data[64]) {
      int32_t s = 0;
      for (int i = 0; i < 64; i = i + 1) { s = s + data[i]; }
      return s;
    }
  )";
  hls::FlowOptions options;
  options.top = "acc";
  auto flow = hls::run_flow(source, options);
  ASSERT_TRUE(flow.ok());
  const AxiMap map = default_axi_map(flow.value().function);

  std::uint64_t totals[2] = {0, 0};
  int index = 0;
  for (AxiMode mode : {AxiMode::kDmaBurst, AxiMode::kPerAccess}) {
    AxiSlaveMemory ddr(1 << 16, {});
    for (std::size_t i = 0; i < 64; ++i) {
      ddr.poke_word(map.base_addr.at(0) + i * 4, 1, 4);
    }
    auto run = run_with_axi(flow.value(), {}, ddr, map, mode);
    ASSERT_TRUE(run.ok());
    EXPECT_TRUE(run.value().match);
    EXPECT_EQ(run.value().return_value, 64u);
    totals[index++] = run.value().total_cycles;
  }
  EXPECT_LT(totals[0], totals[1])
      << "DMA-burst wrapper must beat per-access without caching";
}

TEST(HlsAxi, MemoryLatencySensitivity) {
  const char* source = R"(
    int32_t acc(int32_t data[32]) {
      int32_t s = 0;
      for (int i = 0; i < 32; i = i + 1) { s = s + data[i]; }
      return s;
    }
  )";
  hls::FlowOptions options;
  options.top = "acc";
  auto flow = hls::run_flow(source, options);
  ASSERT_TRUE(flow.ok());
  const AxiMap map = default_axi_map(flow.value().function);

  std::uint64_t previous = 0;
  for (unsigned latency : {2u, 16u, 64u}) {
    MemoryTiming timing;
    timing.read_latency = latency;
    timing.write_latency = latency;
    AxiSlaveMemory ddr(1 << 16, timing);
    for (std::size_t i = 0; i < 32; ++i) {
      ddr.poke_word(map.base_addr.at(0) + i * 4, 2, 4);
    }
    auto run = run_with_axi(flow.value(), {}, ddr, map, AxiMode::kPerAccess);
    ASSERT_TRUE(run.ok());
    EXPECT_GE(run.value().total_cycles, previous)
        << "higher memory latency cannot be faster";
    previous = run.value().total_cycles;
  }
}

}  // namespace
}  // namespace hermes::axi

// Protocol-checker tests appended as a separate suite.
namespace hermes::axi {
namespace {

TEST(Checker, CleanOnLegalTraffic) {
  AxiSlaveMemory ddr(8192, {});
  AxiMaster master(ddr);
  AxiChecker checker;
  master.attach_checker(&checker);
  std::vector<std::uint8_t> buffer(1000);
  master.read(5, buffer);        // unaligned multi-burst read
  master.write(4090, buffer);    // crosses the 4KB boundary -> split bursts
  master.read_word(16, 4);
  master.write_word(20, 0xAB, 2);
  EXPECT_TRUE(checker.clean()) << checker.violations().front();
  EXPECT_EQ(checker.dangling(), 0u);
}

TEST(Checker, FlagsIllegalBurstAtAddressChannel) {
  AxiChecker checker;
  AddrBeat crossing;
  crossing.addr = 4096 - 4;
  crossing.len = 3;  // crosses 4KB
  crossing.burst = Burst::kIncr;
  checker.on_ar(crossing);
  ASSERT_FALSE(checker.clean());
  EXPECT_NE(checker.violations()[0].find("4KB"), std::string::npos);
}

TEST(Checker, FlagsMisplacedWlast) {
  AxiChecker checker;
  AddrBeat aw;
  aw.len = 2;  // 3 beats
  checker.on_aw(aw);
  WriteBeat beat;
  beat.last = true;  // LAST on the first of three beats
  checker.on_w(beat);
  EXPECT_FALSE(checker.clean());
}

TEST(Checker, FlagsMissingWlast) {
  AxiChecker checker;
  AddrBeat aw;
  aw.len = 0;  // single beat: LAST required
  checker.on_aw(aw);
  WriteBeat beat;
  beat.last = false;
  checker.on_w(beat);
  EXPECT_FALSE(checker.clean());
}

TEST(Checker, FlagsOrphanResponses) {
  AxiChecker checker;
  ReadBeat rb;
  rb.last = true;
  checker.on_r(rb);
  checker.on_b(Resp::kOkay, 0);
  EXPECT_EQ(checker.violations().size(), 2u);
}

TEST(Checker, FlagsResponseBeforeWlast) {
  AxiChecker checker;
  AddrBeat aw;
  aw.len = 1;
  checker.on_aw(aw);
  WriteBeat beat;
  beat.last = false;
  checker.on_w(beat);
  checker.on_b(Resp::kOkay, 0);  // B while the burst is still open
  EXPECT_FALSE(checker.clean());
}

TEST(Checker, TracksReadBeatCountsPerId) {
  AxiChecker checker;
  AddrBeat ar;
  ar.len = 1;  // 2 beats
  ar.id = 3;
  checker.on_ar(ar);
  ReadBeat rb;
  rb.id = 3;
  rb.last = false;
  checker.on_r(rb);
  rb.last = true;
  checker.on_r(rb);
  EXPECT_TRUE(checker.clean());
  EXPECT_EQ(checker.dangling(), 0u);
  // One more beat on the now-retired transaction.
  checker.on_r(rb);
  EXPECT_FALSE(checker.clean());
}

TEST(Checker, DanglingTransactionsReported) {
  AxiChecker checker;
  AddrBeat ar;
  ar.len = 3;
  checker.on_ar(ar);
  AddrBeat aw;
  aw.len = 0;
  checker.on_aw(aw);
  EXPECT_EQ(checker.dangling(), 2u);
}

/// End-to-end: the whole AXI-wrapped accelerator run stays protocol-clean.
TEST(Checker, AcceleratorTrafficIsClean) {
  const char* source = R"(
    void touch(int32_t data[64]) {
      for (int i = 0; i < 64; i = i + 1) { data[i] = data[i] + i; }
    }
  )";
  hls::FlowOptions options;
  options.top = "touch";
  auto flow = hls::run_flow(source, options);
  ASSERT_TRUE(flow.ok());
  const AxiMap map = default_axi_map(flow.value().function);
  AxiSlaveMemory ddr(1 << 16, {});
  // run_with_axi owns its master, so validate the same traffic pattern
  // through a checked master manually: DMA-in + DMA-out of the array.
  AxiChecker checker;
  AxiMaster master(ddr);
  master.attach_checker(&checker);
  std::vector<std::uint8_t> image(64 * 4);
  master.read(map.base_addr.at(0), image);
  master.write(map.base_addr.at(0), image);
  EXPECT_TRUE(checker.clean()) << checker.violations().front();
  EXPECT_EQ(checker.dangling(), 0u);
}

}  // namespace
}  // namespace hermes::axi
