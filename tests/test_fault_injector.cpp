// Tests for the cross-layer fault-injection bus: schedule determinism,
// point registration, and the per-layer recovery paths it exercises
// (AXI retry, flash TMR voting, SpaceWire re-send, HM restart budget).
#include <gtest/gtest.h>

#include <vector>

#include "axi/master.hpp"
#include "axi/slave_memory.hpp"
#include "boot/bl.hpp"
#include "boot/flash.hpp"
#include "boot/loadlist.hpp"
#include "boot/spacewire.hpp"
#include "dataflow/taskgraph.hpp"
#include "fault/injector.hpp"
#include "hv/hypervisor.hpp"
#include "noc/noc.hpp"
#include "svc/cache.hpp"

namespace hermes::fault {
namespace {

FaultPlan one_point_plan(std::string point, FaultSchedule schedule,
                         std::uint64_t seed = 7) {
  FaultPlan plan;
  plan.seed = seed;
  plan.points.push_back({std::move(point), schedule});
  return plan;
}

TEST(Schedule, SameSeedSameFireSequence) {
  FaultSchedule sched;
  sched.probability = 0.3;
  FaultInjector a(one_point_plan("p", sched, 42));
  FaultInjector b(one_point_plan("p", sched, 42));
  const PointId pa = a.register_point("p");
  const PointId pb = b.register_point("p");
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.should_fire(pa), b.should_fire(pb)) << "opportunity " << i;
  }
  EXPECT_GT(a.stats(pa).fires, 0u);
  EXPECT_LT(a.stats(pa).fires, 1000u);
}

TEST(Schedule, FiringIsIndependentOfOtherPoints) {
  // The same point must fire identically whether or not another point is
  // being exercised in between — each point owns a private RNG stream.
  FaultSchedule sched;
  sched.probability = 0.25;
  FaultPlan plan;
  plan.seed = 9;
  plan.points = {{"x", sched}, {"y", sched}};

  FaultInjector alone(plan);
  const PointId x1 = alone.register_point("x");
  std::vector<bool> solo;
  for (int i = 0; i < 200; ++i) solo.push_back(alone.should_fire(x1));

  FaultInjector mixed(plan);
  const PointId x2 = mixed.register_point("x");
  const PointId y2 = mixed.register_point("y");
  for (int i = 0; i < 200; ++i) {
    (void)mixed.should_fire(y2);
    ASSERT_EQ(mixed.should_fire(x2), solo[i]) << "opportunity " << i;
    (void)mixed.should_fire(y2);
  }
}

TEST(Schedule, WindowBoundsFiring) {
  FaultSchedule sched;
  sched.probability = 1.0;
  sched.window_begin = 10;
  sched.window_end = 15;
  FaultInjector inj(one_point_plan("p", sched));
  const PointId p = inj.register_point("p");
  for (std::uint64_t i = 0; i < 30; ++i) {
    const bool fired = inj.should_fire(p);
    EXPECT_EQ(fired, i >= 10 && i < 15) << "opportunity " << i;
  }
  EXPECT_EQ(inj.stats(p).fires, 5u);
  EXPECT_EQ(inj.stats(p).opportunities, 30u);
}

TEST(Schedule, BurstContinuesPastWindow) {
  FaultSchedule sched;
  sched.probability = 1.0;
  sched.window_begin = 0;
  sched.window_end = 1;  // only opportunity 0 can *start* a firing
  sched.burst_len = 3;
  FaultInjector inj(one_point_plan("p", sched));
  const PointId p = inj.register_point("p");
  EXPECT_TRUE(inj.should_fire(p));
  EXPECT_TRUE(inj.should_fire(p));
  EXPECT_TRUE(inj.should_fire(p));
  EXPECT_FALSE(inj.should_fire(p));
  EXPECT_EQ(inj.stats(p).fires, 3u);
}

TEST(Schedule, MaxFiresBudget) {
  FaultSchedule sched;
  sched.probability = 1.0;
  sched.max_fires = 4;
  FaultInjector inj(one_point_plan("p", sched));
  const PointId p = inj.register_point("p");
  unsigned fires = 0;
  for (int i = 0; i < 100; ++i) fires += inj.should_fire(p) ? 1 : 0;
  EXPECT_EQ(fires, 4u);
}

TEST(Injector, UnarmedPointNeverFires) {
  FaultSchedule sched;
  sched.probability = 1.0;
  FaultInjector inj(one_point_plan("armed", sched));
  const PointId other = inj.register_point("unarmed");
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(inj.should_fire(other));
  EXPECT_FALSE(inj.should_fire(kNoFaultPoint));
}

TEST(Injector, ReRegistrationPreservesState) {
  FaultSchedule sched;
  sched.probability = 1.0;
  sched.max_fires = 2;
  FaultInjector inj(one_point_plan("p", sched));
  const PointId first = inj.register_point("p");
  EXPECT_TRUE(inj.should_fire(first));
  // A torn-down and rebuilt subsystem re-registers: same id, stream resumes.
  const PointId second = inj.register_point("p");
  EXPECT_EQ(first, second);
  EXPECT_TRUE(inj.should_fire(second));
  EXPECT_FALSE(inj.should_fire(second));  // budget carried across
}

TEST(Injector, LoadPlanRearmsAndResets) {
  FaultSchedule sched;
  sched.probability = 1.0;
  sched.max_fires = 1;
  FaultInjector inj(one_point_plan("p", sched, 5));
  const PointId p = inj.register_point("p");
  EXPECT_TRUE(inj.should_fire(p));
  EXPECT_FALSE(inj.should_fire(p));
  inj.load_plan(one_point_plan("p", sched, 5));  // same plan again
  EXPECT_TRUE(inj.should_fire(p)) << "counters must reset on load_plan";
}

TEST(Injector, MutateWordStaysInWidthAndChangesValue) {
  FaultSchedule sched;
  sched.probability = 1.0;
  FaultInjector inj(one_point_plan("p", sched));
  const PointId p = inj.register_point("p");
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t mutated = inj.mutate_word(p, 0, 16);
    EXPECT_NE(mutated, 0u);            // mask is non-zero
    EXPECT_EQ(mutated >> 16, 0u);      // confined to the low 16 bits
  }
}

TEST(Plans, RandomPlanIsDeterministicAndNonEmpty) {
  for (std::uint64_t seed = 1; seed < 40; ++seed) {
    const FaultPlan a = make_random_plan(seed);
    const FaultPlan b = make_random_plan(seed);
    ASSERT_FALSE(a.points.empty());
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
      EXPECT_EQ(a.points[i].point, b.points[i].point);
      EXPECT_EQ(a.points[i].schedule.probability,
                b.points[i].schedule.probability);
      EXPECT_EQ(a.points[i].schedule.window_begin,
                b.points[i].schedule.window_begin);
      EXPECT_EQ(a.points[i].schedule.max_fires, b.points[i].schedule.max_fires);
    }
  }
}

TEST(Plans, CatalogCoversEveryRegisteredPoint) {
  // Every point the subsystems register must be in the catalog, so random
  // plans can reach every layer.
  FaultInjector inj;
  axi::AxiSlaveMemory slave(1024, axi::MemoryTiming{});
  slave.attach_injector(&inj);
  boot::BootEnvironment env;
  env.attach_injector(&inj);
  hv::Hypervisor hv(hv::HvConfig{});
  hv.attach_injector(&inj);
  // The dataflow engine registers its node points per simulation.
  df::TaskGraph graph;
  const std::size_t only = graph.add_task({"t", 1, 0, 1, 0});
  graph.sources = {only};
  graph.sinks = {only};
  df::DataflowOptions df_options;
  df_options.injector = &inj;
  (void)df::simulate_dataflow(graph, 1, df_options);
  noc::Crossbar fabric(noc::FabricConfig{}, {{"p0"}}, {{"e0"}});
  fabric.attach_injector(&inj);
  svc::FlowCache cache;
  cache.attach_injector(&inj);

  const auto catalog = default_point_catalog();
  for (std::size_t i = 0; i < inj.num_points(); ++i) {
    bool found = false;
    for (std::string_view name : catalog) {
      if (name == inj.name(i)) found = true;
    }
    EXPECT_TRUE(found) << "point not in catalog: " << inj.name(i);
  }
  EXPECT_EQ(inj.num_points(), catalog.size());
}

// ---------------------------------------------------------------------------
// Per-layer recovery paths
// ---------------------------------------------------------------------------

TEST(AxiRecovery, WriteSlvErrIsRetriedAndSucceeds) {
  FaultSchedule sched;
  sched.probability = 1.0;
  sched.max_fires = 1;  // exactly the first write response fails
  FaultInjector inj(one_point_plan("axi.b.slverr", sched));
  axi::AxiSlaveMemory slave(4096, axi::MemoryTiming{});
  slave.attach_injector(&inj);
  axi::AxiMaster master(slave);

  std::vector<std::uint8_t> data(64);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 3 + 1);
  }
  ASSERT_TRUE(master.write(0x100, data).ok());
  EXPECT_GE(master.stats().retries, 1u);
  EXPECT_GE(master.stats().errors, 1u);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(slave.peek(0x100 + i), data[i]) << "byte " << i;
  }
}

TEST(AxiRecovery, ReadSlvErrIsRetriedAndDataIsClean) {
  FaultSchedule sched;
  sched.probability = 1.0;
  sched.max_fires = 1;
  FaultInjector inj(one_point_plan("axi.r.slverr", sched));
  axi::AxiSlaveMemory slave(4096, axi::MemoryTiming{});
  slave.attach_injector(&inj);
  axi::AxiMaster master(slave);

  for (std::uint64_t i = 0; i < 64; ++i) {
    slave.poke(0x200 + i, static_cast<std::uint8_t>(0xA0 ^ i));
  }
  std::vector<std::uint8_t> out(64);
  ASSERT_TRUE(master.read(0x200, out).ok());
  EXPECT_GE(master.stats().retries, 1u);
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(out[i], static_cast<std::uint8_t>(0xA0 ^ i)) << "byte " << i;
  }
  // Retried beats are not double-counted.
  EXPECT_EQ(master.stats().bytes_read, 64u);
}

TEST(AxiRecovery, PersistentStallTripsWatchdogNotHang) {
  FaultSchedule sched;
  sched.probability = 1.0;  // AR never accepted
  FaultInjector inj(one_point_plan("axi.ar.stall", sched));
  axi::AxiSlaveMemory slave(4096, axi::MemoryTiming{});
  slave.attach_injector(&inj);
  axi::MasterConfig config;
  config.watchdog_cycles = 500;
  axi::AxiMaster master(slave, config);

  std::vector<std::uint8_t> out(32);
  const Status status = master.read(0, out);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kDeadlineExceeded);
  EXPECT_GE(master.stats().watchdog_trips, 1u);
}

TEST(AxiRecovery, OobReadAnswersDecErrWithoutRetry) {
  axi::AxiSlaveMemory slave(256, axi::MemoryTiming{});
  axi::AxiMaster master(slave);
  std::vector<std::uint8_t> out(16);
  const Status status = master.read(0x10'0000, out);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(master.stats().retries, 0u) << "DECERR is permanent, never retried";
}

TEST(AxiRecovery, LegacyOobModeStaysOkay) {
  axi::MemoryTiming timing;
  timing.oob_decerr = false;
  axi::AxiSlaveMemory slave(256, timing);
  axi::AxiMaster master(slave);
  std::vector<std::uint8_t> out(16, 0xFF);
  ASSERT_TRUE(master.read(0x10'0000, out).ok());
  for (std::uint8_t byte : out) EXPECT_EQ(byte, 0u);  // legacy: reads as 0
}

TEST(FlashRecovery, TmrVoteMasksRottedReplica) {
  FaultSchedule sched;
  sched.probability = 1.0;
  FaultInjector inj(one_point_plan("flash.rot.replica", sched));
  boot::FlashBank bank(4096, 3);
  bank.attach_injector(&inj);

  std::vector<std::uint8_t> image(512);
  for (std::size_t i = 0; i < image.size(); ++i) {
    image[i] = static_cast<std::uint8_t>(i ^ 0x5C);
  }
  bank.program(0, image);

  std::vector<std::uint8_t> out(image.size());
  const boot::FlashBank::ReadResult r = bank.read(0, out);
  EXPECT_GT(r.corrected_bytes, 0u) << "the vote must have seen the rot";
  EXPECT_EQ(out, image) << "TMR must mask a single rotted copy";
}

TEST(FlashRecovery, VotedRotEscapesTmrButReplicaReadIsClean) {
  FaultSchedule sched;
  sched.probability = 1.0;
  FaultInjector inj(one_point_plan("flash.rot.voted", sched));
  boot::FlashBank bank(4096, 3);
  bank.attach_injector(&inj);

  std::vector<std::uint8_t> image(256, 0x42);
  bank.program(0, image);
  std::vector<std::uint8_t> voted(image.size());
  bank.read(0, voted);
  EXPECT_NE(voted, image) << "post-vote rot cannot be masked by TMR";

  // The per-replica recovery rung BL1 uses: raw copies are still intact.
  std::vector<std::uint8_t> copy(image.size());
  bank.read_replica(0, 0, copy);
  EXPECT_EQ(copy, image);
}

TEST(SpwRecovery, DroppedFramesAreResent) {
  FaultSchedule sched;
  sched.probability = 1.0;
  sched.window_begin = 1;  // let the request frame through
  sched.max_fires = 2;
  FaultInjector inj(one_point_plan("spw.frame.drop", sched));
  boot::SpaceWireLink link;
  link.attach_injector(&inj);
  link.host_object("obj", std::vector<std::uint8_t>(1000, 0x77));

  std::uint64_t cycles = 0;
  auto fetched = link.fetch("obj", cycles);
  ASSERT_TRUE(fetched.ok()) << fetched.status().to_string();
  EXPECT_EQ(fetched.value().size(), 1000u);
  EXPECT_EQ(link.frames_dropped(), 2u);
  EXPECT_GE(link.retries(), 2u);
}

TEST(SpwRecovery, CorruptedFramesAreCaughtByCrc) {
  FaultSchedule sched;
  sched.probability = 1.0;
  sched.window_begin = 1;
  sched.max_fires = 1;
  FaultInjector inj(one_point_plan("spw.frame.corrupt", sched));
  boot::SpaceWireLink link;
  link.attach_injector(&inj);
  std::vector<std::uint8_t> object(700);
  for (std::size_t i = 0; i < object.size(); ++i) {
    object[i] = static_cast<std::uint8_t>(i);
  }
  link.host_object("obj", object);

  std::uint64_t cycles = 0;
  auto fetched = link.fetch("obj", cycles);
  ASSERT_TRUE(fetched.ok()) << fetched.status().to_string();
  EXPECT_EQ(fetched.value(), object) << "corruption must never reach the data";
  EXPECT_GE(link.crc_errors_detected(), 1u);
}

TEST(SpwRecovery, WedgedLinkHitsDeadlineNotHang) {
  FaultSchedule sched;
  sched.probability = 1.0;  // every frame dropped, forever
  FaultInjector inj(one_point_plan("spw.frame.drop", sched));
  boot::SpwTiming timing;
  timing.deadline_cycles = 2'000;
  boot::SpaceWireLink link(timing);
  link.attach_injector(&inj);
  link.host_object("obj", std::vector<std::uint8_t>(4096, 1));

  std::uint64_t cycles = 0;
  auto fetched = link.fetch("obj", cycles, /*max_retries=*/1'000'000);
  ASSERT_FALSE(fetched.ok());
  EXPECT_EQ(fetched.status().code(), ErrorCode::kDeadlineExceeded);
}

TEST(BootRecovery, VotedRotRecoveredByReplicaScan) {
  // Rot every voted flash read: BL0 falls back to SpaceWire for BL1, the
  // load list falls back to SpaceWire, and each image is recovered by the
  // per-replica digest scan — the chain still reaches the application.
  FaultSchedule sched;
  sched.probability = 1.0;
  FaultInjector inj(one_point_plan("flash.rot.voted", sched));
  boot::BootEnvironment env;
  env.attach_injector(&inj);

  std::vector<std::uint8_t> bl1(1024, 0x11);
  boot::LoadList list;
  boot::LoadEntry app;
  app.kind = boot::LoadKind::kBl2;
  app.name = "app";
  app.dest_addr = boot::MemoryMap::kDdrBase;
  list.entries.push_back(app);
  std::vector<std::vector<std::uint8_t>> images = {
      std::vector<std::uint8_t>(2048, 0x22)};
  boot::stage_boot_media(env, bl1, list, images);

  const boot::BootResult result = boot::run_boot_chain(env);
  ASSERT_TRUE(result.status.ok()) << result.status.to_string();
  EXPECT_EQ(result.reached, boot::BootStage::kApplication);
  EXPECT_GT(result.report.integrity_retries, 0u);
  EXPECT_GT(result.report.spw_fallbacks, 0u);
  bool replica_recovery = false;
  for (const boot::StepRecord& step : result.report.steps) {
    if (step.name.rfind("recover", 0) == 0 &&
        step.detail.find("replica") != std::string::npos) {
      replica_recovery = true;
    }
  }
  EXPECT_TRUE(replica_recovery) << result.report.render();
}

hv::HvConfig crashy_config(unsigned restart_budget) {
  hv::HvConfig config;
  config.plan.major_frame = 1000;
  config.plan.per_core.assign(hv::kNumCores, {});
  config.plan.per_core[0] = {{0, 900, 0, 0}};
  hv::PartitionConfig p0;
  p0.name = "crashy";
  p0.region = {0x0000, 0x1000};
  p0.profile = {1000, 0, 100};
  p0.on_job = [](hv::PartitionApi& api) { api.raise_error(); };
  config.partitions = {p0};
  config.restart_budget = restart_budget;
  return config;
}

TEST(HmEscalation, RestartBudgetThenSuspend) {
  hv::Hypervisor hv(crashy_config(/*restart_budget=*/2));
  auto stats = hv.run(10'000);
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  const auto& log = stats.value().hm_log;
  ASSERT_GE(log.size(), 3u);
  EXPECT_EQ(log[0].action, hv::HmAction::kRestartPartition);
  EXPECT_EQ(log[1].action, hv::HmAction::kRestartPartition);
  EXPECT_EQ(log[2].action, hv::HmAction::kSuspendPartition);
  EXPECT_EQ(stats.value().partitions[0].restarts, 2u);
  EXPECT_EQ(stats.value().partitions[0].final_state,
            hv::PartitionState::kSuspended);
  // Suspension sticks: no further jobs complete, no further HM events.
  EXPECT_EQ(log.size(), 3u);
}

TEST(HmEscalation, ResumedPartitionHaltsOnNextError) {
  // A system partition keeps resuming the crash-looping partition; once the
  // restart budget is spent the second escalation rung halts it terminally.
  hv::HvConfig config = crashy_config(/*restart_budget=*/1);
  config.plan.per_core[0].push_back({900, 80, 1, 0});
  hv::PartitionConfig monitor;
  monitor.name = "monitor";
  monitor.system = true;
  monitor.region = {0x1000, 0x1000};
  monitor.profile = {1000, 0, 10};
  monitor.on_job = [](hv::PartitionApi& api) {
    (void)api.resume_partition(0);
  };
  config.partitions.push_back(monitor);

  hv::Hypervisor hv(config);
  auto stats = hv.run(10'000);
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  EXPECT_EQ(stats.value().partitions[0].final_state,
            hv::PartitionState::kHalted);
  // Filter for the error events (deadline-miss log entries interleave).
  std::vector<hv::HmAction> actions;
  for (const auto& entry : stats.value().hm_log) {
    if (entry.event == hv::HmEvent::kPartitionError) {
      actions.push_back(entry.action);
    }
  }
  ASSERT_EQ(actions.size(), 3u);
  EXPECT_EQ(actions[0], hv::HmAction::kRestartPartition);
  EXPECT_EQ(actions[1], hv::HmAction::kSuspendPartition);
  EXPECT_EQ(actions[2], hv::HmAction::kHaltPartition);
}

TEST(HvInjection, JobOverrunRaisesBudgetOverrun) {
  hv::HvConfig config;
  config.plan.major_frame = 1000;
  config.plan.per_core.assign(hv::kNumCores, {});
  config.plan.per_core[0] = {{0, 900, 0, 0}};
  hv::PartitionConfig p0;
  p0.name = "p0";
  p0.region = {0x0000, 0x1000};
  p0.profile = {1000, 0, 100};
  config.partitions = {p0};

  FaultSchedule sched;
  sched.probability = 1.0;
  sched.max_fires = 1;  // exactly one inflated job
  FaultInjector inj(one_point_plan("hv.job.overrun", sched));
  hv::Hypervisor hv(config);
  hv.attach_injector(&inj);

  auto stats = hv.run(10'000);
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  EXPECT_EQ(stats.value().partitions[0].budget_overruns, 1u);
  bool raised = false;
  for (const auto& entry : stats.value().hm_log) {
    if (entry.event == hv::HmEvent::kBudgetOverrun) raised = true;
  }
  EXPECT_TRUE(raised);
}

TEST(HvInjection, InjectedCrashesConsumeRestartBudget) {
  hv::HvConfig config;
  config.plan.major_frame = 1000;
  config.plan.per_core.assign(hv::kNumCores, {});
  config.plan.per_core[0] = {{0, 900, 0, 0}};
  hv::PartitionConfig p0;
  p0.name = "p0";
  p0.region = {0x0000, 0x1000};
  p0.profile = {1000, 0, 100};
  config.partitions = {p0};
  config.restart_budget = 2;

  FaultSchedule sched;
  sched.probability = 1.0;  // crash at every job completion
  FaultInjector inj(one_point_plan("hv.partition.crash", sched));
  hv::Hypervisor hv(config);
  hv.attach_injector(&inj);

  auto stats = hv.run(10'000);
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  EXPECT_EQ(stats.value().partitions[0].restarts, 2u);
  EXPECT_EQ(stats.value().partitions[0].final_state,
            hv::PartitionState::kSuspended);
}

}  // namespace
}  // namespace hermes::fault
