// Compile-service scheduling, budget and cancellation behaviour.
//
// Fairness, cancellation and dedup are all tested against the same bar as
// the cache: nothing a tenant does — flooding the queue, cancelling
// mid-stage, bursting one digest from 16 jobs — may change what any OTHER
// job produces, and every anomaly must land in the right Status code with
// its partial stats intact.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "svc/service.hpp"
#include "svc_corpus.hpp"

namespace hermes::svc {
namespace {

hls::SweepConfig small_sweep() {
  hls::SweepConfig sweep;
  sweep.ops = {ir::Op::kAdd, ir::Op::kMul};
  sweep.widths = {8, 32};
  sweep.pipeline_stages = {0, 1};
  sweep.clock_periods_ns = {4.0, 8.0};
  return sweep;
}

ServiceOptions serial_options() {
  ServiceOptions options;
  options.workers = 0;
  options.sweep = small_sweep();
  return options;
}

/// A request that dispatches but never compiles (budget 0 fails before the
/// first stage) — the fairness tests only watch dispatch order.
CompileRequest instant_request(int index, std::string tenant) {
  CompileRequest request = corpus::source_request(index, std::move(tenant));
  request.cycle_budget = 0;
  return request;
}

/// Job ids of `tenant` sorted by the dispatch slot the WFQ assigned them.
std::vector<unsigned> dispatch_slots(const std::vector<CompileOutcome>& all,
                                     const std::string& tenant) {
  std::vector<unsigned> slots;
  for (const CompileOutcome& outcome : all) {
    if (outcome.tenant == tenant) slots.push_back(outcome.dispatch_index);
  }
  std::sort(slots.begin(), slots.end());
  return slots;
}

// ---------------------------------------------------------------------------
// Weighted-fair scheduling
// ---------------------------------------------------------------------------

TEST(Scheduling, EqualWeightsAlternateUnderSkewedLoad) {
  // Tenant A floods 30 jobs before B's 6 arrive; with equal weights the WFQ
  // must still alternate, so B's last job dispatches by slot 11 instead of
  // waiting out the flood.
  CompileService service(serial_options());
  std::vector<CompileRequest> requests;
  for (int i = 0; i < 30; ++i) requests.push_back(instant_request(i, "flood"));
  for (int i = 0; i < 6; ++i) requests.push_back(instant_request(i, "light"));
  const std::vector<CompileOutcome> outcomes = service.run(std::move(requests));

  const std::vector<unsigned> light = dispatch_slots(outcomes, "light");
  ASSERT_EQ(light.size(), 6u);
  EXPECT_LE(light.back(), 11u)
      << "light tenant starved behind the flood: last slot " << light.back();
  // First 12 slots split 6/6 between the tenants.
  const std::vector<unsigned> flood = dispatch_slots(outcomes, "flood");
  const auto in_first_12 = [](unsigned slot) { return slot < 12; };
  EXPECT_EQ(std::count_if(flood.begin(), flood.end(), in_first_12), 6);
  EXPECT_EQ(std::count_if(light.begin(), light.end(), in_first_12), 6);
}

TEST(Scheduling, WeightsSkewDispatchProportionally) {
  // weight(heavy)=3, weight(light)=1: every 4 consecutive slots carry 3
  // heavy jobs and 1 light job while both queues are non-empty.
  CompileService service(serial_options());
  service.set_tenant_weight("heavy", 3);
  service.set_tenant_weight("light", 1);
  std::vector<CompileRequest> requests;
  for (int i = 0; i < 12; ++i) requests.push_back(instant_request(i, "heavy"));
  for (int i = 0; i < 4; ++i) requests.push_back(instant_request(i, "light"));
  const std::vector<CompileOutcome> outcomes = service.run(std::move(requests));

  const std::vector<unsigned> heavy = dispatch_slots(outcomes, "heavy");
  const std::vector<unsigned> light = dispatch_slots(outcomes, "light");
  for (unsigned window = 0; window < 4; ++window) {
    const auto in_window = [&](unsigned slot) {
      return slot >= window * 4 && slot < (window + 1) * 4;
    };
    EXPECT_EQ(std::count_if(heavy.begin(), heavy.end(), in_window), 3)
        << "window " << window;
    EXPECT_EQ(std::count_if(light.begin(), light.end(), in_window), 1)
        << "window " << window;
  }
}

TEST(Scheduling, DispatchOrderIdenticalSerialAndPooled) {
  // All jobs are submitted before drain and pops are serialized, so the WFQ
  // sequence is a pure function of the submission set — any worker count.
  const auto build = [] {
    std::vector<CompileRequest> requests;
    for (int i = 0; i < 9; ++i) requests.push_back(instant_request(i, "a"));
    for (int i = 0; i < 5; ++i) requests.push_back(instant_request(i, "b"));
    return requests;
  };
  CompileService serial(serial_options());
  ServiceOptions pooled_options = serial_options();
  pooled_options.workers = 4;
  CompileService pooled(pooled_options);
  serial.set_tenant_weight("a", 2);
  pooled.set_tenant_weight("a", 2);

  const auto serial_out = serial.run(build());
  const auto pooled_out = pooled.run(build());
  ASSERT_EQ(serial_out.size(), pooled_out.size());
  for (std::size_t i = 0; i < serial_out.size(); ++i) {
    EXPECT_EQ(serial_out[i].dispatch_index, pooled_out[i].dispatch_index)
        << "job " << i;
  }
}

// ---------------------------------------------------------------------------
// Budgets
// ---------------------------------------------------------------------------

TEST(Budgets, ExhaustionReturnsDeadlineExceededWithPartialStats) {
  // Learn the characterize-stage cost, then grant exactly that much: the
  // job must complete characterize, charge it, and die before schedule with
  // the partial stage trace intact.
  const CompileRequest probe = corpus::source_request(3);
  CompileService oracle(serial_options());
  const CompileOutcome full = oracle.run({probe}).front();
  ASSERT_TRUE(full.status.ok());
  ASSERT_GE(full.stages.size(), 4u);
  const std::uint64_t characterize_cost = full.stages[0].cycles;
  ASSERT_GT(characterize_cost, 0u);

  CompileService service(serial_options());
  CompileRequest capped = probe;
  capped.cycle_budget = characterize_cost;  // stage completes, budget spent
  const CompileOutcome outcome = service.run({capped}).front();
  EXPECT_EQ(outcome.status.code(), ErrorCode::kDeadlineExceeded);
  ASSERT_EQ(outcome.stages.size(), 1u) << "partial trace lost";
  EXPECT_EQ(outcome.stages[0].stage, Stage::kCharacterize);
  EXPECT_EQ(outcome.cycles_charged, characterize_cost);
  EXPECT_TRUE(outcome.bitstream.empty());
  EXPECT_EQ(service.stats().deadline_exceeded, 1u);
}

TEST(Budgets, WarmCacheSucceedsWhereColdExhausts) {
  // The budget meters actual work: a budget far too small for a cold
  // compile is ample once every stage is a 1-cycle hit.
  const CompileRequest probe = corpus::source_request(4);
  constexpr std::uint64_t kTinyBudget = 8;

  CompileService cold(serial_options());
  CompileRequest capped = probe;
  capped.cycle_budget = kTinyBudget;
  EXPECT_EQ(cold.run({capped}).front().status.code(),
            ErrorCode::kDeadlineExceeded);

  CompileService warm(serial_options());
  const CompileOutcome uncapped = warm.run({probe}).front();
  ASSERT_TRUE(uncapped.status.ok());
  const CompileOutcome warm_capped = warm.run({capped}).front();
  EXPECT_TRUE(warm_capped.status.ok())
      << warm_capped.status.to_string();
  EXPECT_EQ(warm_capped.fingerprint(), uncapped.fingerprint());
  EXPECT_LE(warm_capped.cycles_charged, kTinyBudget);
}

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

TEST(Cancellation, BeforeDispatchSkipsAllStages) {
  CompileService service(serial_options());
  const std::uint64_t id = service.submit(corpus::source_request(0));
  EXPECT_TRUE(service.cancel(id));
  service.drain();
  const CompileOutcome& outcome = service.outcome(id);
  EXPECT_EQ(outcome.status.code(), ErrorCode::kCancelled);
  EXPECT_TRUE(outcome.stages.empty());
  EXPECT_EQ(outcome.cycles_charged, 0u);
  EXPECT_EQ(service.stats().cancelled, 1u);
  EXPECT_FALSE(service.cancel(id)) << "finished job still cancellable";
}

TEST(Cancellation, MidStageAbortLeavesCacheUncorrupted) {
  // The stage hook fires after the pre-stage checks, so cancelling one's
  // own job at kSchedule exercises the mid-compute abort between
  // scheduling/binding and datapath generation. The aborted compute must
  // insert nothing, and a clean re-run must match the never-cancelled
  // oracle byte for byte.
  const CompileRequest request = corpus::source_request(6);

  CompileService oracle(serial_options());
  const CompileOutcome clean = oracle.run({request}).front();
  ASSERT_TRUE(clean.status.ok());

  CompileService* victim_service = nullptr;
  ServiceOptions options = serial_options();
  options.stage_hook = [&](std::uint64_t job, const CompileRequest&,
                           Stage stage) {
    if (job == 0 && stage == Stage::kSchedule) {
      victim_service->cancel(job);
    }
  };
  CompileService service(options);
  victim_service = &service;

  const std::uint64_t key = schedule_key(request.source, request.flow);
  const CompileOutcome cancelled = service.run({request}).front();
  EXPECT_EQ(cancelled.status.code(), ErrorCode::kCancelled);
  EXPECT_FALSE(service.cache().contains(Stage::kSchedule, key))
      << "aborted compute leaked into the cache";
  EXPECT_EQ(service.cache().stats().computes, 1u)  // characterize only
      << "schedule stage insert happened despite cancellation";

  // Disarm the hook path (job id 1 now) and recompile cleanly in the same
  // service: identical to the never-cancelled oracle.
  const CompileOutcome retried = service.run({request}).front();
  ASSERT_TRUE(retried.status.ok()) << retried.status.to_string();
  EXPECT_EQ(retried.fingerprint(), clean.fingerprint());
  EXPECT_EQ(retried.bitstream, clean.bitstream);
}

TEST(Cancellation, DoesNotDisturbNeighbours) {
  // Cancel every even job in a 12-job corpus; the odd jobs must produce
  // exactly their solo-run results.
  const std::vector<CompileRequest> corpus =
      corpus::mixed_corpus(12, 0xBEEF, {"a", "b"});
  std::vector<CompileOutcome> solo;
  for (const CompileRequest& request : corpus) {
    CompileService fresh(serial_options());
    solo.push_back(fresh.run({request}).front());
  }

  CompileService service(serial_options());
  std::vector<std::uint64_t> ids;
  for (const CompileRequest& request : corpus) {
    ids.push_back(service.submit(request));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    EXPECT_TRUE(service.cancel(ids[i]));
  }
  service.drain();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const CompileOutcome& outcome = service.outcome(ids[i]);
    if (i % 2 == 0) {
      EXPECT_EQ(outcome.status.code(), ErrorCode::kCancelled) << "job " << i;
    } else {
      EXPECT_EQ(outcome.status.code(), solo[i].status.code()) << "job " << i;
      EXPECT_EQ(outcome.fingerprint(), solo[i].fingerprint()) << "job " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// In-flight dedup
// ---------------------------------------------------------------------------

TEST(Dedup, SixteenWayBurstCompilesEachDigestOnce) {
  // 16 identical jobs racing through a pooled service: exactly one compute
  // per stage digest, identical artifacts for every job, and the lookup
  // ledger balances (hits + misses + inflight_waits == lookups).
  ServiceOptions options = serial_options();
  options.workers = 8;
  CompileService service(options);
  const CompileRequest request = corpus::source_request(2);
  std::vector<CompileRequest> burst(16, request);
  const std::vector<CompileOutcome> outcomes = service.run(std::move(burst));

  ASSERT_EQ(outcomes.size(), 16u);
  for (const CompileOutcome& outcome : outcomes) {
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.to_string();
    EXPECT_EQ(outcome.fingerprint(), outcomes.front().fingerprint());
    EXPECT_EQ(outcome.bitstream, outcomes.front().bitstream);
    ASSERT_EQ(outcome.stages.size(), 4u);
  }
  const FlowCacheStats stats = service.cache().stats();
  EXPECT_EQ(stats.computes, 4u) << "a digest was compiled more than once";
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.rot_detected, 0u);
  EXPECT_EQ(stats.hits + stats.misses + stats.inflight_waits, 16u * 4u);
}

TEST(Dedup, DistinctDigestsStillCompileIndependently) {
  ServiceOptions options = serial_options();
  options.workers = 4;
  CompileService service(options);
  std::vector<CompileRequest> requests;
  for (int i = 0; i < 4; ++i) {
    requests.push_back(corpus::source_request(i, "t"));
  }
  const auto outcomes = service.run(std::move(requests));
  for (const CompileOutcome& outcome : outcomes) {
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.to_string();
  }
  // 4 distinct sources share one characterization; schedule/map/bitstream
  // are per-source: 1 + 3 * 4 computes.
  EXPECT_EQ(service.cache().stats().computes, 13u);
}

// ---------------------------------------------------------------------------
// Request validation and bookkeeping
// ---------------------------------------------------------------------------

TEST(Service, RequestWithoutSourceOrNetlistIsRejected) {
  CompileService service(serial_options());
  CompileRequest empty;
  empty.characterize = false;
  const CompileOutcome outcome = service.run({empty}).front();
  EXPECT_EQ(outcome.status.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(service.stats().failed, 1u);
}

TEST(Service, TenantStatsTrackSubmissionAndDispatch) {
  CompileService service(serial_options());
  std::vector<CompileRequest> requests;
  for (int i = 0; i < 3; ++i) requests.push_back(instant_request(i, "x"));
  for (int i = 0; i < 2; ++i) requests.push_back(instant_request(i, "y"));
  (void)service.run(std::move(requests));
  const std::vector<TenantStats> tenants = service.tenant_stats();
  ASSERT_EQ(tenants.size(), 2u);
  EXPECT_EQ(tenants[0].tenant, "x");
  EXPECT_EQ(tenants[0].submitted, 3u);
  EXPECT_EQ(tenants[0].dispatched, 3u);
  EXPECT_EQ(tenants[1].tenant, "y");
  EXPECT_EQ(tenants[1].submitted, 2u);
  EXPECT_EQ(tenants[1].dispatched, 2u);
  EXPECT_EQ(service.stats().submitted, 5u);
  EXPECT_EQ(service.stats().completed, 5u);
}

}  // namespace
}  // namespace hermes::svc
