// Shared random-netlist generator for the engine differential tests.
//
// One generator feeds every engine pairing (event vs sweep, JIT vs
// interpreter, sliced lanes vs scalar twins) so a semantics bug in any engine
// is caught against the same corpus. The generator is deliberately biased
// toward the corners where word-level engines historically diverge:
//  * edge widths 1, 63 and 64 (mask elision, sign-bit placement, the
//    width-64 "no mask" paths);
//  * shift counts at and beyond the operand width, including >= 64 (x86
//    shifts silently take the count mod 64 — the JIT must guard);
//  * mul/div corner constants (0, 1, all-ones == -1 signed, the lone sign
//    bit == INT_MIN of the width) hitting divide-by-zero, divide-by-minus-one
//    and overflow-negation semantics;
//  * RAM read and write ports sharing one address wire, so same-cycle
//    read/write collisions (write-first semantics) occur constantly.
//
// Cells only ever consume existing wires, so generated graphs are acyclic by
// construction; register feedback is driven from sequential/port wires only.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "hw/netlist.hpp"

namespace hermes::hw::fuzz {

/// A generated netlist plus the handles the driver loop needs.
struct RandomDesign {
  Module module{"rand"};
  std::vector<std::string> input_ports;
  std::size_t memory_count = 0;
};

/// Wire width with heavy bias toward the edge cases 1, 63, 64 (and 32, the
/// dedicated mask encodings in the JIT).
inline unsigned fuzz_width(Rng& rng) {
  switch (rng.next_below(8)) {
    case 0: return 1;
    case 1: return 63;
    case 2: return 64;
    case 3: return 32;
    default: return 1 + static_cast<unsigned>(rng.next_below(64));
  }
}

/// Constant value biased toward arithmetic corners of `width`: zero, one,
/// all-ones (signed -1), the lone sign bit (signed minimum), and values at /
/// beyond typical shift counts.
inline std::uint64_t fuzz_const(Rng& rng, unsigned width) {
  switch (rng.next_below(10)) {
    case 0: return 0;
    case 1: return 1;
    case 2: return bit_mask(width);          // -1 signed
    case 3: return 1ULL << (width - 1);      // sign bit / INT_MIN
    case 4: return bit_mask(width) - 1;      // -2 signed
    case 5: return width;                    // shift count == width
    case 6: return 63;
    case 7: return 64;                       // shift count off the word
    default: return rng.next_u64();
  }
}

/// Builds one random acyclic netlist. `prefix` keeps module names unique per
/// test binary.
inline RandomDesign make_random_design(Rng& rng, int index,
                                       const std::string& prefix = "rand") {
  RandomDesign design;
  Module& m = design.module;
  m = Module(prefix + std::to_string(index));

  std::vector<WireId> pool;      // wires usable as comb inputs
  std::vector<WireId> bit_pool;  // 1-bit wires (mux selects, enables)
  // Wires with no combinational dependency (ports, consts, register
  // outputs) — the only legal drivers for register-feedback filler cells.
  std::vector<WireId> safe_pool;

  const auto add_pool = [&](WireId wire) {
    pool.push_back(wire);
    if (m.wire_width(wire) == 1) bit_pool.push_back(wire);
  };

  const int num_inputs = 2 + static_cast<int>(rng.next_below(4));
  for (int i = 0; i < num_inputs; ++i) {
    const unsigned width = fuzz_width(rng);
    const std::string name = "in" + std::to_string(i);
    const WireId wire = m.add_wire(width, name);
    m.add_input(wire, name);
    design.input_ports.push_back(name);
    add_pool(wire);
    safe_pool.push_back(wire);
  }
  {
    const WireId en = m.add_wire(1, "en0");
    m.add_input(en, "en0");
    design.input_ports.push_back("en0");
    add_pool(en);
    safe_pool.push_back(en);
  }
  for (int i = 0; i < 5; ++i) {
    const unsigned width = fuzz_width(rng);
    const WireId wire = m.make_const(fuzz_const(rng, width), width);
    add_pool(wire);
    safe_pool.push_back(wire);
  }
  // Small-width constants usable as shift counts at / beyond the width.
  for (int i = 0; i < 2; ++i) {
    const unsigned width = 7 + static_cast<unsigned>(rng.next_below(2));
    const WireId wire =
        m.make_const(rng.next_bool(0.5) ? 64 + rng.next_below(64)
                                        : rng.next_below(67),
                     width);
    add_pool(wire);
    safe_pool.push_back(wire);
  }
  const WireId const_one = m.make_const(1, 1);
  add_pool(const_one);
  safe_pool.push_back(const_one);

  // Feedback registers: placeholder d wires are driven later by filler
  // cells whose inputs come only from safe_pool.
  struct Feedback { WireId d; WireId q; };
  std::vector<Feedback> feedbacks;
  const int num_regs = 1 + static_cast<int>(rng.next_below(3));
  for (int i = 0; i < num_regs; ++i) {
    const unsigned width = 1 + static_cast<unsigned>(rng.next_below(32));
    const WireId d = m.add_wire(width);
    const WireId en = bit_pool[rng.next_below(bit_pool.size())];
    const WireId q = m.make_register(d, en, rng.next_u64(),
                                     "q" + std::to_string(i));
    feedbacks.push_back({d, q});
    add_pool(q);
    safe_pool.push_back(q);
  }

  // Optional memory with one read and one write port. Half the time both
  // ports share one address wire, forcing same-cycle read/write collisions
  // on the same word (write-first: the read returns the new contents).
  if (rng.next_bool(0.7)) {
    Memory mem;
    mem.name = "m0";
    mem.width = 4 + static_cast<unsigned>(rng.next_below(29));
    mem.depth = 8 + rng.next_below(24);
    for (std::size_t i = 0; i < mem.depth / 2; ++i) {
      mem.init.push_back(rng.next_u64());
    }
    const std::size_t mi = m.add_memory(mem);
    design.memory_count = 1;
    const WireId raddr = pool[rng.next_below(pool.size())];
    const bool collide = rng.next_bool(0.5);
    const WireId ren = collide ? const_one
                               : bit_pool[rng.next_below(bit_pool.size())];
    const WireId rdata = m.make_ram_read(mi, raddr, ren, "rdata");
    add_pool(rdata);
    safe_pool.push_back(rdata);
    const WireId waddr = collide ? raddr : pool[rng.next_below(pool.size())];
    const WireId wdata = pool[rng.next_below(pool.size())];
    const WireId wen = collide ? const_one
                               : bit_pool[rng.next_below(bit_pool.size())];
    m.make_ram_write(mi, waddr, wdata, wen);
  }

  // Random comb soup.
  static const CellKind kBinops[] = {
      CellKind::kAdd,  CellKind::kSub,  CellKind::kMul,  CellKind::kDivU,
      CellKind::kDivS, CellKind::kRemU, CellKind::kRemS, CellKind::kAnd,
      CellKind::kOr,   CellKind::kXor,  CellKind::kShl,  CellKind::kShrU,
      CellKind::kShrS, CellKind::kEq,   CellKind::kNe,   CellKind::kLtU,
      CellKind::kLtS,  CellKind::kLeU,  CellKind::kLeS};
  static const CellKind kShifts[] = {CellKind::kShl, CellKind::kShrU,
                                     CellKind::kShrS};
  static const CellKind kDivs[] = {CellKind::kDivU, CellKind::kDivS,
                                   CellKind::kRemU, CellKind::kRemS,
                                   CellKind::kMul};
  const int num_cells = 20 + static_cast<int>(rng.next_below(40));
  for (int i = 0; i < num_cells; ++i) {
    const WireId a = pool[rng.next_below(pool.size())];
    WireId out = kNoWire;
    switch (rng.next_below(8)) {
      case 0:
      case 1: {  // binop over random existing wires
        const CellKind kind = kBinops[rng.next_below(std::size(kBinops))];
        const WireId b = pool[rng.next_below(pool.size())];
        out = m.make_binop(kind, a, b, fuzz_width(rng));
        break;
      }
      case 2: {  // directed: shift by a corner-valued constant count
        const CellKind kind = kShifts[rng.next_below(std::size(kShifts))];
        const unsigned count_width = 7 + static_cast<unsigned>(rng.next_below(2));
        const WireId count = m.make_const(
            fuzz_const(rng, count_width), count_width);
        out = m.make_binop(kind, a, count, fuzz_width(rng));
        break;
      }
      case 3: {  // directed: mul/div/rem against a corner constant
        const CellKind kind = kDivs[rng.next_below(std::size(kDivs))];
        const unsigned width = fuzz_width(rng);
        const WireId b = m.make_const(fuzz_const(rng, width), width);
        out = rng.next_bool(0.5)
                  ? m.make_binop(kind, a, b, fuzz_width(rng))
                  : m.make_binop(kind, b, a, fuzz_width(rng));
        break;
      }
      case 4: {  // mux (branches must share a width)
        const WireId sel = bit_pool[rng.next_below(bit_pool.size())];
        const WireId b =
            m.make_const(fuzz_const(rng, m.wire_width(a)), m.wire_width(a));
        out = rng.next_bool(0.5) ? m.make_mux(sel, a, b) : m.make_mux(sel, b, a);
        break;
      }
      case 5:  // unary
        switch (rng.next_below(4)) {
          case 0: out = m.make_not(a); break;
          case 1: out = m.make_zext(a, fuzz_width(rng)); break;
          case 2: out = m.make_sext(a, fuzz_width(rng)); break;
          default:
            out = m.make_slice(a, static_cast<unsigned>(
                                      rng.next_below(m.wire_width(a))),
                               1 + static_cast<unsigned>(rng.next_below(16)));
            break;
        }
        break;
      default: {  // concat, if the widths fit in 64 bits
        const WireId b = pool[rng.next_below(pool.size())];
        out = m.wire_width(a) + m.wire_width(b) <= 64 ? m.make_concat({a, b})
                                                      : m.make_not(a);
        break;
      }
    }
    add_pool(out);
  }

  // Drive the feedback placeholders from safe wires only.
  for (const Feedback& feedback : feedbacks) {
    Cell cell;
    cell.kind = rng.next_bool(0.5) ? CellKind::kAdd : CellKind::kXor;
    cell.inputs = {feedback.q, safe_pool[rng.next_below(safe_pool.size())]};
    cell.outputs = {feedback.d};
    m.add_cell(std::move(cell));
  }

  // A few observable outputs (every wire is compared directly anyway).
  for (int i = 0; i < 3; ++i) {
    m.add_output(pool[rng.next_below(pool.size())], "out" + std::to_string(i));
  }
  return design;
}

/// Flips exactly one aspect of one random cell: a param bit, one input wire
/// id, or the cell kind. The mutant is only ever digested, never simulated,
/// so the rewired input does not need to exist. Shared by the JIT kernel
/// cache and the compile-service cache collision fuzz: both content-address
/// by Module::digest() and would run stale artifacts on a collision.
inline void mutate_one_cell(Rng& rng, Module& module) {
  std::vector<Cell> cells = module.cells();
  Cell& cell = cells[rng.next_below(cells.size())];
  switch (rng.next_below(3)) {
    case 0:
      cell.param ^= 1;
      break;
    case 1:
      if (!cell.inputs.empty()) {
        cell.inputs[rng.next_below(cell.inputs.size())] ^= 1;
      } else {
        cell.param ^= 2;
      }
      break;
    default:
      cell.kind = cell.kind == CellKind::kAdd ? CellKind::kSub
                                              : CellKind::kAdd;
      break;
  }
  module.replace_cells(std::move(cells));
}

}  // namespace hermes::hw::fuzz
