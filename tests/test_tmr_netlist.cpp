// Netlist-level TMR: accelerators hardened by register triplication survive
// flip-flop SEUs injected into the running simulation — the "transparent to
// the application developer" hardening of NG-ULTRA, tested end to end.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "hls/flow.hpp"
#include "hw/sim.hpp"
#include "hw/tmr_transform.hpp"
#include "hw/verilog.hpp"

namespace hermes::hw {
namespace {

/// A 8-bit accumulator: q += in each cycle.
Module accumulator() {
  Module m("acc");
  const WireId in = m.add_wire(8, "in");
  m.add_input(in, "in");
  const WireId one = m.make_const(1, 1);
  const WireId d = m.add_wire(8, "d");
  const WireId q = m.make_register(d, one, 0, "q");
  Cell add;
  add.kind = CellKind::kAdd;
  add.inputs = {q, in};
  add.outputs = {d};
  m.add_cell(add);
  m.add_output(q, "q");
  return m;
}

TEST(TmrTransform, PreservesBehaviourWithoutFaults) {
  const Module plain = accumulator();
  TmrStats stats;
  const Module hardened = tmr_transform(plain, &stats);
  EXPECT_EQ(stats.registers_triplicated, 1u);
  EXPECT_EQ(stats.added_ffs_bits, 16u);
  EXPECT_TRUE(hardened.validate().ok());

  Simulator a(plain), b(hardened);
  ASSERT_TRUE(a.status().ok());
  ASSERT_TRUE(b.status().ok()) << b.status().to_string();
  for (int cycle = 0; cycle < 50; ++cycle) {
    a.set_input("in", cycle & 0xF);
    b.set_input("in", cycle & 0xF);
    EXPECT_EQ(a.get_output("q"), b.get_output("q")) << "cycle " << cycle;
    a.step();
    b.step();
  }
}

TEST(TmrTransform, MasksSingleReplicaUpsetImmediately) {
  const Module hardened = tmr_transform(accumulator());
  Simulator sim(hardened);
  ASSERT_TRUE(sim.status().ok());
  sim.set_input("in", 1);
  for (int i = 0; i < 10; ++i) sim.step();
  EXPECT_EQ(sim.get_output("q"), 10u);

  // Hit one replica hard: flip several bits.
  const auto replicas = sim.register_outputs();
  ASSERT_EQ(replicas.size(), 3u);
  sim.corrupt_wire(replicas[0], 0);
  sim.corrupt_wire(replicas[0], 3);
  sim.corrupt_wire(replicas[0], 7);
  sim.eval_comb();
  EXPECT_EQ(sim.get_output("q"), 10u) << "voter must mask the damaged replica";

  // The next enabled clock edge re-registers the voted datapath value in
  // every replica: the upset self-corrects.
  sim.step();
  EXPECT_EQ(sim.get_output("q"), 11u);
  EXPECT_EQ(sim.get(replicas[0]), 11u);
  EXPECT_EQ(sim.get(replicas[1]), 11u);
}

TEST(TmrTransform, UnprotectedAccumulatorCorrupts) {
  const Module plain = accumulator();
  Simulator sim(plain);
  ASSERT_TRUE(sim.status().ok());
  sim.set_input("in", 1);
  for (int i = 0; i < 10; ++i) sim.step();
  const auto ffs = sim.register_outputs();
  ASSERT_EQ(ffs.size(), 1u);
  sim.corrupt_wire(ffs[0], 5);  // +32
  sim.eval_comb();
  EXPECT_EQ(sim.get_output("q"), 42u) << "no protection: the flip is visible";
}

TEST(TmrTransform, VerilogStillEmits) {
  const Module hardened = tmr_transform(accumulator());
  const std::string verilog = emit_verilog(hardened);
  EXPECT_NE(verilog.find("_tmr0"), std::string::npos);
  EXPECT_NE(verilog.find("_tmr2"), std::string::npos);
  EXPECT_NE(verilog.find("module acc_tmr"), std::string::npos);
}

/// SEU campaign on a whole HLS-generated accelerator: with FF-TMR, random
/// single-replica upsets sprinkled throughout execution never change the
/// result; each upset is confined to one replica group at a time.
TEST(TmrTransform, HlsAcceleratorSurvivesSeuCampaign) {
  hls::FlowOptions options;
  options.top = "dot";
  auto flow = hls::run_flow(R"(
    int dot(int a[8], int b[8]) {
      int acc = 0;
      for (int i = 0; i < 8; i = i + 1) { acc = acc + a[i] * b[i]; }
      return acc;
    }
  )", options);
  ASSERT_TRUE(flow.ok());

  const Module hardened = tmr_transform(flow.value().fsmd.module);
  ASSERT_TRUE(hardened.validate().ok());

  // Group replica wires by their register triple: consecutive register
  // outputs named *_tmr0/_tmr1/_tmr2.
  Simulator probe(hardened);
  ASSERT_TRUE(probe.status().ok());
  const auto replicas = probe.register_outputs();
  ASSERT_EQ(replicas.size() % 3, 0u);

  const std::uint64_t expect = [] {
    std::uint64_t acc = 0;
    for (int i = 0; i < 8; ++i) acc += (i + 1) * (8 - i);
    return acc;
  }();

  Rng rng(777);
  for (int campaign = 0; campaign < 20; ++campaign) {
    Simulator sim(hardened);
    ASSERT_TRUE(sim.status().ok());
    for (std::size_t i = 0; i < 8; ++i) {
      sim.write_memory(0, i, i + 1);
      sim.write_memory(1, i, 8 - i);
    }
    sim.set_input("start", 1);
    sim.eval_comb();
    std::uint64_t guard = 0;
    while (sim.get_output("done") == 0 && guard++ < 10'000) {
      // One upset per cycle into one replica — but only into groups whose
      // replicas currently agree. A register whose enable has not fired yet
      // still holds an earlier upset; hitting a second replica there is a
      // double fault, which TMR (without scrubbing) does not claim to mask.
      const std::size_t group = rng.next_below(replicas.size() / 3);
      const unsigned replica = static_cast<unsigned>(rng.next_below(3));
      const WireId target = replicas[group * 3 + replica];
      const std::uint64_t v0 = sim.get(replicas[group * 3]);
      const std::uint64_t v1 = sim.get(replicas[group * 3 + 1]);
      const std::uint64_t v2 = sim.get(replicas[group * 3 + 2]);
      if (v0 == v1 && v1 == v2) {
        const unsigned width = hardened.wire_width(target);
        sim.corrupt_wire(target, static_cast<unsigned>(rng.next_below(width)));
      }
      sim.step();
    }
    ASSERT_LT(guard, 10'000u) << "campaign " << campaign << ": accelerator hung";
    EXPECT_EQ(sim.get_output("return_value"), expect)
        << "campaign " << campaign;
  }
}

/// The same campaign on the unprotected netlist corrupts at least one run
/// (sanity check that the campaign is actually stressful).
TEST(TmrTransform, SameCampaignBreaksUnprotectedNetlist) {
  hls::FlowOptions options;
  options.top = "dot";
  auto flow = hls::run_flow(R"(
    int dot(int a[8], int b[8]) {
      int acc = 0;
      for (int i = 0; i < 8; i = i + 1) { acc = acc + a[i] * b[i]; }
      return acc;
    }
  )", options);
  ASSERT_TRUE(flow.ok());
  const Module& plain = flow.value().fsmd.module;
  Simulator probe(plain);
  const auto ffs = probe.register_outputs();

  const std::uint64_t expect = [] {
    std::uint64_t acc = 0;
    for (int i = 0; i < 8; ++i) acc += (i + 1) * (8 - i);
    return acc;
  }();

  Rng rng(777);
  int corrupted_runs = 0;
  for (int campaign = 0; campaign < 20; ++campaign) {
    Simulator sim(plain);
    for (std::size_t i = 0; i < 8; ++i) {
      sim.write_memory(0, i, i + 1);
      sim.write_memory(1, i, 8 - i);
    }
    sim.set_input("start", 1);
    sim.eval_comb();
    std::uint64_t guard = 0;
    while (sim.get_output("done") == 0 && guard++ < 10'000) {
      const WireId target = ffs[rng.next_below(ffs.size())];
      const unsigned width = plain.wire_width(target);
      sim.corrupt_wire(target, static_cast<unsigned>(rng.next_below(width)));
      sim.step();
    }
    if (guard >= 10'000 || sim.get_output("return_value") != expect) {
      ++corrupted_runs;
    }
  }
  EXPECT_GT(corrupted_runs, 0)
      << "an upset per cycle must corrupt an unprotected accelerator";
}

}  // namespace
}  // namespace hermes::hw

// Self-healing (feedback-voter) TMR tests appended as a separate suite.
namespace hermes::hw {
namespace {

Module accumulator2() {
  Module m("acc2");
  const WireId in = m.add_wire(8, "in");
  const WireId en = m.add_wire(1, "en");
  m.add_input(in, "in");
  m.add_input(en, "en");
  const WireId d = m.add_wire(8, "d");
  const WireId q = m.make_register(d, en, 0, "q");
  Cell add;
  add.kind = CellKind::kAdd;
  add.inputs = {q, in};
  add.outputs = {d};
  m.add_cell(add);
  m.add_output(q, "q");
  return m;
}

TEST(SelfHealingTmr, PreservesBehaviour) {
  const Module plain = accumulator2();
  TmrOptions options;
  options.self_healing = true;
  const Module hardened = tmr_transform(plain, nullptr, options);
  ASSERT_TRUE(hardened.validate().ok());
  Simulator a(plain), b(hardened);
  ASSERT_TRUE(b.status().ok()) << b.status().to_string();
  for (int cycle = 0; cycle < 60; ++cycle) {
    const std::uint64_t in = cycle * 3;
    const std::uint64_t en = (cycle % 3) != 0;  // exercises the hold path
    a.set_input("in", in);
    a.set_input("en", en);
    b.set_input("in", in);
    b.set_input("en", en);
    EXPECT_EQ(a.get_output("q"), b.get_output("q")) << "cycle " << cycle;
    a.step();
    b.step();
  }
}

TEST(SelfHealingTmr, UpsetHealsOnIdleRegisters) {
  TmrOptions options;
  options.self_healing = true;
  const Module hardened = tmr_transform(accumulator2(), nullptr, options);
  Simulator sim(hardened);
  ASSERT_TRUE(sim.status().ok());
  sim.set_input("in", 1);
  sim.set_input("en", 1);
  for (int i = 0; i < 5; ++i) sim.step();
  sim.set_input("en", 0);  // register now idle: plain TMR would hold upsets
  sim.step();
  const auto replicas = sim.register_outputs();
  ASSERT_EQ(replicas.size(), 3u);
  sim.corrupt_wire(replicas[0], 2);
  EXPECT_NE(sim.get(replicas[0]), sim.get(replicas[1]));
  sim.step();  // one idle edge: the voted value re-registers everywhere
  EXPECT_EQ(sim.get(replicas[0]), sim.get(replicas[1]));
  EXPECT_EQ(sim.get(replicas[0]), sim.get(replicas[2]));
  EXPECT_EQ(sim.get_output("q"), 5u);
}

TEST(SelfHealingTmr, SurvivesSustainedUpsetsWithoutAgreeCheck) {
  // Unlike plain FF-TMR (see HlsAcceleratorSurvivesSeuCampaign), the
  // self-healing variant tolerates one upset per cycle indefinitely with no
  // "replicas must agree first" restriction: every upset is flushed at the
  // next edge, so double accumulation cannot happen.
  hls::FlowOptions options;
  options.top = "dot";
  auto flow = hls::run_flow(R"(
    int dot(int a[8], int b[8]) {
      int acc = 0;
      for (int i = 0; i < 8; i = i + 1) { acc = acc + a[i] * b[i]; }
      return acc;
    }
  )", options);
  ASSERT_TRUE(flow.ok());
  TmrOptions tmr;
  tmr.self_healing = true;
  const Module hardened = tmr_transform(flow.value().fsmd.module, nullptr, tmr);
  ASSERT_TRUE(hardened.validate().ok());

  Simulator probe(hardened);
  const auto replicas = probe.register_outputs();
  const std::uint64_t expect = [] {
    std::uint64_t acc = 0;
    for (int i = 0; i < 8; ++i) acc += (i + 1) * (8 - i);
    return acc;
  }();

  Rng rng(4242);
  for (int campaign = 0; campaign < 25; ++campaign) {
    Simulator sim(hardened);
    for (std::size_t i = 0; i < 8; ++i) {
      sim.write_memory(0, i, i + 1);
      sim.write_memory(1, i, 8 - i);
    }
    sim.set_input("start", 1);
    sim.eval_comb();
    std::uint64_t guard = 0;
    while (sim.get_output("done") == 0 && guard++ < 10'000) {
      const WireId target = replicas[rng.next_below(replicas.size())];
      const unsigned width = hardened.wire_width(target);
      sim.corrupt_wire(target, static_cast<unsigned>(rng.next_below(width)));
      sim.step();
    }
    ASSERT_LT(guard, 10'000u) << "campaign " << campaign;
    EXPECT_EQ(sim.get_output("return_value"), expect) << "campaign " << campaign;
  }
}

}  // namespace
}  // namespace hermes::hw
