// JIT chaos soak: a family of run-twice SEU campaigns executed on the JIT
// backend and fingerprint-checked against the serial interpreter oracle.
//
// Every plan runs three times — once on the interpreter (the oracle), twice
// on run_netlist_seu_campaign_jit — and all three fault::fingerprint values
// must agree. Plan modules come from the shared random-netlist generator, so
// the soak sweeps the same edge-width/shift/division/RAM-collision corners
// as the differential fuzz, but through the full campaign machinery: many
// Simulator replicas sharing one cached kernel across ThreadPool workers.
#include <gtest/gtest.h>

#include <cstdint>

#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "fault/campaign.hpp"
#include "hw/jit/cache.hpp"
#include "hw/jit/exec_memory.hpp"
#include "netlist_fuzz.hpp"
#include "soak_util.hpp"

namespace hermes::fault {
namespace {

using soak::kFnvBasis;
using soak::mix;

// 64 random-design plans plus 8 on a fixed design stressing warm-cache reuse
// across repeated campaigns: 72 plans, each run once on the interpreter and
// twice on the JIT backend.
constexpr int kRandomPlans = 64;
constexpr int kWarmCachePlans = 8;
static_assert(kRandomPlans + kWarmCachePlans >= 64,
              "ISSUE floor: at least 64 run-twice JIT soak plans");

NetlistSeuPlan make_plan(std::uint64_t seed) {
  NetlistSeuPlan plan;
  plan.replicas = 8 + static_cast<std::size_t>(seed % 9);  // 8..16
  plan.cycles_before = 2 + (seed % 3);
  plan.cycles_after = 8 + (seed % 8);
  plan.base_seed = seed * 0x9E3779B97F4A7C15ULL + 1;
  return plan;
}

/// Runs one plan on one engine and reduces the result to its fingerprint,
/// folding in the plan seed so plans cannot mask each other's outcomes.
std::uint64_t run_once(const hw::Module& module, const NetlistSeuPlan& plan,
                       std::uint64_t seed, bool jit) {
  const NetlistSeuResult result =
      jit ? run_netlist_seu_campaign_jit(module, plan)
          : run_netlist_seu_campaign(module, plan);
  std::uint64_t hash = kFnvBasis;
  hash = mix(hash, seed);
  hash = mix(hash, fingerprint(result));
  hash = mix(hash, result.diverged);
  return hash;
}

TEST(JitSoak, RandomDesignCampaignsMatchInterpreterOracleRunTwice) {
  Rng rng(0x50A7C0DE);
  std::uint64_t oracle_hash = kFnvBasis;
  std::uint64_t jit_hash_a = kFnvBasis;
  std::uint64_t jit_hash_b = kFnvBasis;
  for (int i = 0; i < kRandomPlans; ++i) {
    hw::fuzz::RandomDesign design =
        hw::fuzz::make_random_design(rng, i, "jit_soak");
    ASSERT_TRUE(design.module.validate().ok()) << "plan " << i;
    NetlistSeuPlan plan = make_plan(static_cast<std::uint64_t>(i) + 1);
    plan.inputs.emplace_back("en0", 1);
    for (const std::string& port : design.input_ports) {
      if (port != "en0" && rng.next_bool(0.75)) {
        plan.inputs.emplace_back(port, rng.next_u64());
      }
    }

    const std::uint64_t oracle =
        run_once(design.module, plan, i, /*jit=*/false);
    const std::uint64_t jit_a = run_once(design.module, plan, i, /*jit=*/true);
    const std::uint64_t jit_b = run_once(design.module, plan, i, /*jit=*/true);
    ASSERT_EQ(oracle, jit_a) << "JIT diverged from interpreter, plan " << i;
    ASSERT_EQ(jit_a, jit_b) << "JIT campaign not run-twice stable, plan " << i;
    oracle_hash = mix(oracle_hash, oracle);
    jit_hash_a = mix(jit_hash_a, jit_a);
    jit_hash_b = mix(jit_hash_b, jit_b);
  }
  EXPECT_EQ(oracle_hash, jit_hash_a);
  EXPECT_EQ(jit_hash_a, jit_hash_b);
}

TEST(JitSoak, WarmCacheCampaignsStayDeterministicAcrossPlans) {
  // One fixed design, many plans: after the first campaign every simulator
  // construction is a warm cache hit, so this family soaks the shared-kernel
  // path specifically. Stats only move when the JIT is actually available.
  Rng rng(0xCAC4E5EED);
  hw::fuzz::RandomDesign design =
      hw::fuzz::make_random_design(rng, 0, "jit_soak_warm");
  ASSERT_TRUE(design.module.validate().ok());

  hw::jit::KernelCache::global().reset_stats();
  std::uint64_t first_pass = kFnvBasis;
  std::uint64_t second_pass = kFnvBasis;
  for (int i = 0; i < kWarmCachePlans; ++i) {
    NetlistSeuPlan plan = make_plan(1000 + static_cast<std::uint64_t>(i));
    plan.inputs.emplace_back("en0", 1);
    const std::uint64_t oracle =
        run_once(design.module, plan, i, /*jit=*/false);
    first_pass = mix(first_pass, run_once(design.module, plan, i, true));
    second_pass = mix(second_pass, run_once(design.module, plan, i, true));
    ASSERT_EQ(oracle, run_once(design.module, plan, i, true)) << "plan " << i;
  }
  EXPECT_EQ(first_pass, second_pass);

  const auto stats = hw::jit::KernelCache::global().stats();
  if (hw::jit::jit_available()) {
    // All campaigns share one module digest: exactly one compile, every
    // other simulator construction a hit.
    EXPECT_EQ(stats.compiles, 1u);
    EXPECT_GT(stats.hits, stats.compiles);
  } else {
    EXPECT_EQ(stats.compiles, 0u);
    EXPECT_EQ(stats.hits + stats.misses, 0u);
  }
}

}  // namespace
}  // namespace hermes::fault
