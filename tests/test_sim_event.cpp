// Differential tests for the event-driven simulator engine, plus the
// determinism contract of the parallel campaign / characterization runners.
//
// The event-driven engine (default) and the full-sweep oracle share one
// compiled op table but disagree-prone machinery (fanout scheduling, level
// draining, lazy dirty flags). The randomized test drives both engines on
// generated netlists — random inputs, corrupt_wire injections, RAM traffic,
// backdoor memory writes — and asserts every wire and memory word matches
// after every settle.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "fault/campaign.hpp"
#include "hls/eucalyptus.hpp"
#include "hls/flow.hpp"
#include "hw/netlist.hpp"
#include "hw/sim.hpp"

namespace hermes::hw {
namespace {

/// A generated netlist plus the handles the driver loop needs.
struct RandomDesign {
  Module module{"rand"};
  std::vector<std::string> input_ports;
  std::size_t memory_count = 0;
};

/// Builds a random acyclic netlist: input ports, constants, feedback
/// registers (counter-style, driven only from sequential/port wires so no
/// combinational loop can form), a soup of random comb cells, and optional
/// RAM read/write ports.
RandomDesign make_random_design(Rng& rng, int index) {
  RandomDesign design;
  Module& m = design.module;
  m = Module("rand" + std::to_string(index));

  std::vector<WireId> pool;      // wires usable as comb inputs
  std::vector<WireId> bit_pool;  // 1-bit wires (mux selects, enables)
  // Wires with no combinational dependency (ports, consts, register
  // outputs) — the only legal drivers for register-feedback filler cells.
  std::vector<WireId> safe_pool;

  const auto add_pool = [&](WireId wire) {
    pool.push_back(wire);
    if (m.wire_width(wire) == 1) bit_pool.push_back(wire);
  };

  const int num_inputs = 2 + static_cast<int>(rng.next_below(4));
  for (int i = 0; i < num_inputs; ++i) {
    const unsigned width = 1 + static_cast<unsigned>(rng.next_below(64));
    const std::string name = "in" + std::to_string(i);
    const WireId wire = m.add_wire(width, name);
    m.add_input(wire, name);
    design.input_ports.push_back(name);
    add_pool(wire);
    safe_pool.push_back(wire);
  }
  {
    const WireId en = m.add_wire(1, "en0");
    m.add_input(en, "en0");
    design.input_ports.push_back("en0");
    add_pool(en);
    safe_pool.push_back(en);
  }
  for (int i = 0; i < 3; ++i) {
    const unsigned width = 1 + static_cast<unsigned>(rng.next_below(64));
    const WireId wire = m.make_const(rng.next_u64(), width);
    add_pool(wire);
    safe_pool.push_back(wire);
  }
  const WireId const_one = m.make_const(1, 1);
  add_pool(const_one);
  safe_pool.push_back(const_one);

  // Feedback registers: placeholder d wires are driven later by filler
  // cells whose inputs come only from safe_pool.
  struct Feedback { WireId d; WireId q; };
  std::vector<Feedback> feedbacks;
  const int num_regs = 1 + static_cast<int>(rng.next_below(3));
  for (int i = 0; i < num_regs; ++i) {
    const unsigned width = 1 + static_cast<unsigned>(rng.next_below(32));
    const WireId d = m.add_wire(width);
    const WireId en = bit_pool[rng.next_below(bit_pool.size())];
    const WireId q = m.make_register(d, en, rng.next_u64(),
                                     "q" + std::to_string(i));
    feedbacks.push_back({d, q});
    add_pool(q);
    safe_pool.push_back(q);
  }

  // Optional memory with one read and one write port.
  if (rng.next_bool(0.7)) {
    Memory mem;
    mem.name = "m0";
    mem.width = 4 + static_cast<unsigned>(rng.next_below(29));
    mem.depth = 8 + rng.next_below(24);
    for (std::size_t i = 0; i < mem.depth / 2; ++i) {
      mem.init.push_back(rng.next_u64());
    }
    const std::size_t mi = m.add_memory(mem);
    design.memory_count = 1;
    const WireId raddr = pool[rng.next_below(pool.size())];
    const WireId ren = bit_pool[rng.next_below(bit_pool.size())];
    const WireId rdata = m.make_ram_read(mi, raddr, ren, "rdata");
    add_pool(rdata);
    safe_pool.push_back(rdata);
    const WireId waddr = pool[rng.next_below(pool.size())];
    const WireId wdata = pool[rng.next_below(pool.size())];
    const WireId wen = bit_pool[rng.next_below(bit_pool.size())];
    m.make_ram_write(mi, waddr, wdata, wen);
  }

  // Random comb soup. Cells only consume existing wires, so the graph
  // stays acyclic by construction.
  static const CellKind kBinops[] = {
      CellKind::kAdd,  CellKind::kSub,  CellKind::kMul,  CellKind::kDivU,
      CellKind::kDivS, CellKind::kRemU, CellKind::kRemS, CellKind::kAnd,
      CellKind::kOr,   CellKind::kXor,  CellKind::kShl,  CellKind::kShrU,
      CellKind::kShrS, CellKind::kEq,   CellKind::kNe,   CellKind::kLtU,
      CellKind::kLtS,  CellKind::kLeU,  CellKind::kLeS};
  const int num_cells = 20 + static_cast<int>(rng.next_below(40));
  for (int i = 0; i < num_cells; ++i) {
    const WireId a = pool[rng.next_below(pool.size())];
    WireId out = kNoWire;
    switch (rng.next_below(6)) {
      case 0:
      case 1:
      case 2: {  // binop
        const CellKind kind = kBinops[rng.next_below(std::size(kBinops))];
        const WireId b = pool[rng.next_below(pool.size())];
        out = m.make_binop(kind, a, b,
                           1 + static_cast<unsigned>(rng.next_below(64)));
        break;
      }
      case 3: {  // mux (branches must share a width)
        const WireId sel = bit_pool[rng.next_below(bit_pool.size())];
        const WireId b = m.make_const(rng.next_u64(), m.wire_width(a));
        out = rng.next_bool(0.5) ? m.make_mux(sel, a, b) : m.make_mux(sel, b, a);
        break;
      }
      case 4:  // unary
        switch (rng.next_below(4)) {
          case 0: out = m.make_not(a); break;
          case 1:
            out = m.make_zext(a, 1 + static_cast<unsigned>(rng.next_below(64)));
            break;
          case 2:
            out = m.make_sext(a, 1 + static_cast<unsigned>(rng.next_below(64)));
            break;
          default:
            out = m.make_slice(a, static_cast<unsigned>(
                                      rng.next_below(m.wire_width(a))),
                               1 + static_cast<unsigned>(rng.next_below(16)));
            break;
        }
        break;
      default: {  // concat, if the widths fit in 64 bits
        const WireId b = pool[rng.next_below(pool.size())];
        if (m.wire_width(a) + m.wire_width(b) <= 64) {
          out = m.make_concat({a, b});
        } else {
          out = m.make_not(a);
        }
        break;
      }
    }
    add_pool(out);
  }

  // Drive the feedback placeholders from safe wires only.
  for (const Feedback& feedback : feedbacks) {
    Cell cell;
    cell.kind = rng.next_bool(0.5) ? CellKind::kAdd : CellKind::kXor;
    cell.inputs = {feedback.q, safe_pool[rng.next_below(safe_pool.size())]};
    cell.outputs = {feedback.d};
    m.add_cell(std::move(cell));
  }

  // A few observable outputs (every wire is compared directly anyway).
  for (int i = 0; i < 3; ++i) {
    m.add_output(pool[rng.next_below(pool.size())], "out" + std::to_string(i));
  }
  return design;
}

void expect_identical(const Simulator& event, const Simulator& sweep,
                      const RandomDesign& design, int trial, int cycle) {
  for (WireId w = 0; w < design.module.wire_count(); ++w) {
    ASSERT_EQ(event.get(w), sweep.get(w))
        << "trial " << trial << " cycle " << cycle << " wire "
        << design.module.wire_name(w) << " (" << w << ")";
  }
  for (std::size_t mem = 0; mem < design.memory_count; ++mem) {
    const std::size_t depth = design.module.memories()[mem].depth;
    for (std::size_t addr = 0; addr < depth; ++addr) {
      ASSERT_EQ(event.read_memory(mem, addr), sweep.read_memory(mem, addr))
          << "trial " << trial << " cycle " << cycle << " mem[" << addr << "]";
    }
  }
}

TEST(SimEventDifferential, RandomNetlistsMatchFullSweepOracle) {
  constexpr int kDesigns = 60;
  constexpr int kCyclesPerDesign = 30;  // 1800 netlist/cycle trials
  Rng rng(0xD1FF);

  for (int trial = 0; trial < kDesigns; ++trial) {
    RandomDesign design = make_random_design(rng, trial);
    ASSERT_TRUE(design.module.validate().ok()) << "trial " << trial;
    Simulator event(design.module, SimOptions{.event_driven = true});
    Simulator sweep(design.module, SimOptions{.event_driven = false});
    ASSERT_TRUE(event.status().ok()) << event.status().message();
    ASSERT_TRUE(sweep.status().ok()) << sweep.status().message();
    expect_identical(event, sweep, design, trial, -1);

    const std::vector<WireId> regs = event.register_outputs();
    for (int cycle = 0; cycle < kCyclesPerDesign; ++cycle) {
      for (const std::string& port : design.input_ports) {
        if (rng.next_bool(0.5)) {
          const std::uint64_t value = rng.next_u64();
          event.set_input(port, value);
          sweep.set_input(port, value);
        }
      }
      if (rng.next_bool(0.3)) {  // mid-cycle settle must agree too
        event.eval_comb();
        sweep.eval_comb();
        expect_identical(event, sweep, design, trial, cycle);
      }
      if (rng.next_bool(0.3)) {
        // SEU injection: mostly register state, sometimes an arbitrary
        // (possibly combinational) wire — the next settle must erase the
        // flip identically in both engines.
        const WireId target =
            (!regs.empty() && rng.next_bool(0.7))
                ? regs[rng.next_below(regs.size())]
                : static_cast<WireId>(
                      rng.next_below(design.module.wire_count()));
        const unsigned bit = static_cast<unsigned>(
            rng.next_below(design.module.wire_width(target)));
        event.corrupt_wire(target, bit);
        sweep.corrupt_wire(target, bit);
      }
      if (design.memory_count != 0 && rng.next_bool(0.2)) {
        const Memory& mem = design.module.memories()[0];
        const std::size_t addr = rng.next_below(mem.depth);
        const std::uint64_t value = rng.next_u64();
        event.write_memory(0, addr, value);
        sweep.write_memory(0, addr, value);
      }
      event.step();
      sweep.step();
      ASSERT_EQ(event.cycles(), sweep.cycles());
      expect_identical(event, sweep, design, trial, cycle);
    }
  }
}

TEST(SimEventDifferential, HlsAcceleratorSameResultBothEngines) {
  hls::FlowOptions options;
  options.top = "dot";
  auto flow = hls::run_flow(R"(
    int dot(int a[16], int b[16]) {
      int acc = 0;
      for (int i = 0; i < 16; i = i + 1) { acc = acc + a[i] * b[i]; }
      return acc;
    }
  )", options);
  ASSERT_TRUE(flow.ok());
  const Module& module = flow.value().fsmd.module;

  auto run = [&](bool event_driven) {
    Simulator sim(module, SimOptions{.event_driven = event_driven});
    EXPECT_TRUE(sim.status().ok());
    for (std::size_t i = 0; i < 16; ++i) {
      sim.write_memory(0, i, i + 1);
      sim.write_memory(1, i, 2 * i + 1);
    }
    sim.set_input("start", 1);
    auto cycles = sim.run_until("done", 100'000);
    EXPECT_TRUE(cycles.ok());
    return std::make_pair(cycles.ok() ? cycles.value() : 0,
                          sim.get_output("return_value"));
  };
  const auto [event_cycles, event_result] = run(true);
  const auto [sweep_cycles, sweep_result] = run(false);
  EXPECT_EQ(event_cycles, sweep_cycles);
  EXPECT_EQ(event_result, sweep_result);
  EXPECT_NE(event_result, 0u);
}

TEST(SimEventDifferential, LazySettleKeepsObservableSemantics) {
  // Counter with enable: repeated settles without input changes are no-ops,
  // and outputs stay fresh right after step() without extra eval_comb calls.
  Module m("counter");
  const WireId en = m.add_wire(1, "en");
  m.add_input(en, "en");
  const WireId d = m.add_wire(8, "d");
  const WireId q = m.make_register(d, en, 0, "q");
  const WireId one = m.make_const(1, 8);
  Cell add;
  add.kind = CellKind::kAdd;
  add.inputs = {q, one};
  add.outputs = {d};
  m.add_cell(add);
  m.add_output(q, "q");

  Simulator sim(m);
  ASSERT_TRUE(sim.status().ok());
  sim.set_input("en", 1);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(sim.get_output("q"), static_cast<std::uint64_t>(i));
    sim.eval_comb();
    sim.eval_comb();  // redundant settles must not disturb state
    sim.step();
  }
  sim.set_input("en", 0);
  sim.step();
  sim.step();
  EXPECT_EQ(sim.get_output("q"), 5u);
  EXPECT_EQ(sim.cycles(), 7u);
}

}  // namespace
}  // namespace hermes::hw

namespace hermes {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<int> hits(997, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }
  // Degenerate counts.
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<std::size_t> order;
  pool.parallel_for(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, BackToBackSubmissions) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.parallel_for(17, [&](std::size_t i) {
      sum.fetch_add(static_cast<int>(i) + 1);
    });
    ASSERT_EQ(sum.load(), 17 * 18 / 2);
  }
}

}  // namespace
}  // namespace hermes

namespace hermes::fault {
namespace {

void expect_same_report(const ScrubReport& a, const ScrubReport& b) {
  EXPECT_EQ(a.injected_upsets, b.injected_upsets);
  EXPECT_EQ(a.corrected, b.corrected);
  EXPECT_EQ(a.detected_uncorrectable, b.detected_uncorrectable);
  EXPECT_EQ(a.silent_corruptions, b.silent_corruptions);
}

TEST(Campaign, ScrubParallelBitIdenticalToSerial) {
  ScrubCampaignPlan plan;
  plan.replicas = 6;
  plan.memory_words = 512;
  plan.intervals = 4;
  plan.seu.upset_probability_per_word = 2e-3;
  plan.seu.mbu_probability = 0.1;

  for (Protection protection :
       {Protection::kNone, Protection::kEdac, Protection::kTmr}) {
    plan.protection = protection;
    ThreadPool serial(0);
    ThreadPool threaded(3);
    const ScrubCampaignResult a = run_scrub_campaign(plan, &serial);
    const ScrubCampaignResult b = run_scrub_campaign(plan, &threaded);
    ASSERT_EQ(a.per_replica.size(), b.per_replica.size());
    for (std::size_t i = 0; i < a.per_replica.size(); ++i) {
      expect_same_report(a.per_replica[i], b.per_replica[i]);
    }
    expect_same_report(a.total, b.total);
    EXPECT_GT(a.total.injected_upsets, 0u);
  }
}

hw::Module make_counter_module() {
  hw::Module m("campaign_counter");
  const hw::WireId one = m.make_const(1, 1);
  const hw::WireId d = m.add_wire(8, "d");
  const hw::WireId q = m.make_register(d, one, 0, "q");
  const hw::WireId inc = m.make_const(1, 8);
  hw::Cell add;
  add.kind = hw::CellKind::kAdd;
  add.inputs = {q, inc};
  add.outputs = {d};
  m.add_cell(std::move(add));
  m.add_output(q, "q");
  return m;
}

TEST(Campaign, NetlistSeuParallelBitIdenticalToSerial) {
  const hw::Module module = make_counter_module();
  NetlistSeuPlan plan;
  plan.replicas = 12;
  plan.cycles_before = 3;
  plan.cycles_after = 8;

  ThreadPool serial(0);
  ThreadPool threaded(4);
  const NetlistSeuResult a = run_netlist_seu_campaign(module, plan, &serial);
  const NetlistSeuResult b = run_netlist_seu_campaign(module, plan, &threaded);
  ASSERT_EQ(a.per_replica.size(), b.per_replica.size());
  for (std::size_t i = 0; i < a.per_replica.size(); ++i) {
    EXPECT_EQ(a.per_replica[i].target, b.per_replica[i].target);
    EXPECT_EQ(a.per_replica[i].bit, b.per_replica[i].bit);
    EXPECT_EQ(a.per_replica[i].diverged, b.per_replica[i].diverged);
    EXPECT_EQ(a.per_replica[i].first_divergence_cycle,
              b.per_replica[i].first_divergence_cycle);
  }
  EXPECT_EQ(a.diverged, b.diverged);
  // Flipping a bit of the sole counter register always corrupts its count.
  EXPECT_EQ(a.diverged, plan.replicas);
  for (const NetlistSeuOutcome& outcome : a.per_replica) {
    EXPECT_EQ(outcome.first_divergence_cycle, 0u);
  }
}

}  // namespace
}  // namespace hermes::fault

namespace hermes::hls {
namespace {

TEST(Eucalyptus, ParallelSweepIdenticalToSerial) {
  const TechLibrary lib(ng_ultra());
  SweepConfig config;
  config.widths = {8, 32};
  config.pipeline_stages = {0, 2};
  config.clock_periods_ns = {4.0, 10.0};

  ThreadPool serial(0);
  ThreadPool threaded(4);
  const auto a = run_sweep(lib, config, &serial);
  const auto b = run_sweep(lib, config, &threaded);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].op, b[i].op);
    EXPECT_EQ(a[i].width, b[i].width);
    EXPECT_EQ(a[i].pipeline_stages, b[i].pipeline_stages);
    EXPECT_EQ(a[i].clock_period_ns, b[i].clock_period_ns);
    EXPECT_EQ(a[i].delay_ns, b[i].delay_ns);
    EXPECT_EQ(a[i].latency, b[i].latency);
    EXPECT_EQ(a[i].meets_timing, b[i].meets_timing);
    EXPECT_EQ(a[i].fmax_mhz, b[i].fmax_mhz);
    EXPECT_EQ(a[i].cost.luts, b[i].cost.luts);
    EXPECT_EQ(a[i].cost.ffs, b[i].cost.ffs);
  }
}

}  // namespace
}  // namespace hermes::hls
