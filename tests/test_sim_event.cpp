// Differential tests across every simulator engine, plus the determinism
// contract of the parallel campaign / characterization runners.
//
// The event-driven engine (default), the full-sweep oracle, the JIT backend
// and lane 0 of the bit-sliced engine share one compiled op table but
// disagree-prone machinery (fanout scheduling, level draining, native
// codegen, slice transposition). The randomized test drives all four engines
// on generated netlists — random inputs, corrupt_wire injections, RAM
// traffic, backdoor memory writes — and asserts every wire and memory word
// matches after every settle. The generator (tests/netlist_fuzz.hpp) is
// biased toward edge widths (1, 63, 64), shift counts at/beyond the width,
// mul/div corner constants and same-cycle RAM read/write collisions.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "fault/campaign.hpp"
#include "hls/eucalyptus.hpp"
#include "hls/flow.hpp"
#include "hw/netlist.hpp"
#include "hw/sim.hpp"
#include "hw/sim_sliced.hpp"
#include "netlist_fuzz.hpp"

namespace hermes::hw {
namespace {

using fuzz::RandomDesign;

void expect_identical(const Simulator& oracle, const Simulator& other,
                      const SlicedSimulator& sliced,
                      const RandomDesign& design, int trial, int cycle,
                      const char* engine) {
  for (WireId w = 0; w < design.module.wire_count(); ++w) {
    ASSERT_EQ(oracle.get(w), other.get(w))
        << engine << " trial " << trial << " cycle " << cycle << " wire "
        << design.module.wire_name(w) << " (" << w << ")";
    ASSERT_EQ(oracle.get(w), sliced.get_lane(w, 0))
        << "sliced lane0 trial " << trial << " cycle " << cycle << " wire "
        << design.module.wire_name(w) << " (" << w << ")";
  }
  for (std::size_t mem = 0; mem < design.memory_count; ++mem) {
    const std::size_t depth = design.module.memories()[mem].depth;
    for (std::size_t addr = 0; addr < depth; ++addr) {
      ASSERT_EQ(oracle.read_memory(mem, addr), other.read_memory(mem, addr))
          << engine << " trial " << trial << " cycle " << cycle << " mem["
          << addr << "]";
      ASSERT_EQ(oracle.read_memory(mem, addr),
                sliced.read_memory_lane(mem, addr, 0))
          << "sliced lane0 trial " << trial << " cycle " << cycle << " mem["
          << addr << "]";
    }
  }
}

TEST(SimEngineDifferential, RandomNetlistsMatchAcrossAllEngines) {
  constexpr int kDesigns = 60;
  constexpr int kCyclesPerDesign = 25;  // 1500 netlist/cycle trials
  Rng rng(0xD1FF);

  for (int trial = 0; trial < kDesigns; ++trial) {
    RandomDesign design = fuzz::make_random_design(rng, trial);
    ASSERT_TRUE(design.module.validate().ok()) << "trial " << trial;
    Simulator sweep(design.module, SimOptions{.backend = SimBackend::kSweep});
    Simulator event(design.module, SimOptions{.backend = SimBackend::kEvent});
    Simulator jit(design.module, SimOptions{.backend = SimBackend::kJit});
    SlicedSimulator sliced(design.module);
    ASSERT_TRUE(sweep.status().ok()) << sweep.status().message();
    ASSERT_TRUE(event.status().ok()) << event.status().message();
    ASSERT_TRUE(jit.status().ok()) << jit.status().message();
    ASSERT_TRUE(sliced.status().ok()) << sliced.status().message();
    expect_identical(sweep, event, sliced, design, trial, -1, "event");
    expect_identical(sweep, jit, sliced, design, trial, -1, "jit");

    const std::vector<WireId> regs = sweep.register_outputs();
    for (int cycle = 0; cycle < kCyclesPerDesign; ++cycle) {
      for (const std::string& port : design.input_ports) {
        if (rng.next_bool(0.5)) {
          const std::uint64_t value = rng.next_u64();
          sweep.set_input(port, value);
          event.set_input(port, value);
          jit.set_input(port, value);
          sliced.set_input(port, value);
        }
      }
      if (rng.next_bool(0.3)) {  // mid-cycle settle must agree too
        sweep.eval_comb();
        event.eval_comb();
        jit.eval_comb();
        sliced.eval_comb();
        expect_identical(sweep, event, sliced, design, trial, cycle, "event");
        expect_identical(sweep, jit, sliced, design, trial, cycle, "jit");
      }
      if (rng.next_bool(0.3)) {
        // SEU injection: mostly register state, sometimes an arbitrary
        // (possibly combinational) wire — the next settle must erase the
        // flip identically in every engine. Sliced lanes all take the flip
        // so lane 0 keeps tracking the scalar engines.
        const WireId target =
            (!regs.empty() && rng.next_bool(0.7))
                ? regs[rng.next_below(regs.size())]
                : static_cast<WireId>(
                      rng.next_below(design.module.wire_count()));
        const unsigned bit = static_cast<unsigned>(
            rng.next_below(design.module.wire_width(target)));
        sweep.corrupt_wire(target, bit);
        event.corrupt_wire(target, bit);
        jit.corrupt_wire(target, bit);
        sliced.corrupt_wire(target, bit, ~0ULL);
      }
      if (design.memory_count != 0 && rng.next_bool(0.2)) {
        const Memory& mem = design.module.memories()[0];
        const std::size_t addr = rng.next_below(mem.depth);
        const std::uint64_t value = rng.next_u64();
        sweep.write_memory(0, addr, value);
        event.write_memory(0, addr, value);
        jit.write_memory(0, addr, value);
        sliced.write_memory(0, addr, value);
      }
      sweep.step();
      event.step();
      jit.step();
      sliced.step();
      ASSERT_EQ(sweep.cycles(), event.cycles());
      ASSERT_EQ(sweep.cycles(), jit.cycles());
      expect_identical(sweep, event, sliced, design, trial, cycle, "event");
      expect_identical(sweep, jit, sliced, design, trial, cycle, "jit");
    }
  }
}

TEST(SimEngineDifferential, HlsAcceleratorSameResultAllBackends) {
  hls::FlowOptions options;
  options.top = "dot";
  auto flow = hls::run_flow(R"(
    int dot(int a[16], int b[16]) {
      int acc = 0;
      for (int i = 0; i < 16; i = i + 1) { acc = acc + a[i] * b[i]; }
      return acc;
    }
  )", options);
  ASSERT_TRUE(flow.ok());
  const Module& module = flow.value().fsmd.module;

  auto run = [&](SimBackend backend) {
    Simulator sim(module, SimOptions{.backend = backend});
    EXPECT_TRUE(sim.status().ok());
    for (std::size_t i = 0; i < 16; ++i) {
      sim.write_memory(0, i, i + 1);
      sim.write_memory(1, i, 2 * i + 1);
    }
    sim.set_input("start", 1);
    auto cycles = sim.run_until("done", 100'000);
    EXPECT_TRUE(cycles.ok());
    return std::make_pair(cycles.ok() ? cycles.value() : 0,
                          sim.get_output("return_value"));
  };
  const auto [event_cycles, event_result] = run(SimBackend::kEvent);
  const auto [sweep_cycles, sweep_result] = run(SimBackend::kSweep);
  const auto [jit_cycles, jit_result] = run(SimBackend::kJit);
  EXPECT_EQ(event_cycles, sweep_cycles);
  EXPECT_EQ(event_result, sweep_result);
  EXPECT_EQ(event_cycles, jit_cycles);
  EXPECT_EQ(event_result, jit_result);
  EXPECT_NE(event_result, 0u);
}

TEST(SimEngineDifferential, LazySettleKeepsObservableSemantics) {
  // Counter with enable: repeated settles without input changes are no-ops,
  // and outputs stay fresh right after step() without extra eval_comb calls.
  Module m("counter");
  const WireId en = m.add_wire(1, "en");
  m.add_input(en, "en");
  const WireId d = m.add_wire(8, "d");
  const WireId q = m.make_register(d, en, 0, "q");
  const WireId one = m.make_const(1, 8);
  Cell add;
  add.kind = CellKind::kAdd;
  add.inputs = {q, one};
  add.outputs = {d};
  m.add_cell(add);
  m.add_output(q, "q");

  for (SimBackend backend :
       {SimBackend::kEvent, SimBackend::kSweep, SimBackend::kJit}) {
    Simulator sim(m, SimOptions{.backend = backend});
    ASSERT_TRUE(sim.status().ok());
    sim.set_input("en", 1);
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(sim.get_output("q"), static_cast<std::uint64_t>(i))
          << to_string(backend);
      sim.eval_comb();
      sim.eval_comb();  // redundant settles must not disturb state
      sim.step();
    }
    sim.set_input("en", 0);
    sim.step();
    sim.step();
    EXPECT_EQ(sim.get_output("q"), 5u) << to_string(backend);
    EXPECT_EQ(sim.cycles(), 7u) << to_string(backend);
  }
}

}  // namespace
}  // namespace hermes::hw

namespace hermes {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<int> hits(997, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }
  // Degenerate counts.
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<std::size_t> order;
  pool.parallel_for(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, BackToBackSubmissions) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.parallel_for(17, [&](std::size_t i) {
      sum.fetch_add(static_cast<int>(i) + 1);
    });
    ASSERT_EQ(sum.load(), 17 * 18 / 2);
  }
}

}  // namespace
}  // namespace hermes

namespace hermes::fault {
namespace {

void expect_same_report(const ScrubReport& a, const ScrubReport& b) {
  EXPECT_EQ(a.injected_upsets, b.injected_upsets);
  EXPECT_EQ(a.corrected, b.corrected);
  EXPECT_EQ(a.detected_uncorrectable, b.detected_uncorrectable);
  EXPECT_EQ(a.silent_corruptions, b.silent_corruptions);
}

TEST(Campaign, ScrubParallelBitIdenticalToSerial) {
  ScrubCampaignPlan plan;
  plan.replicas = 6;
  plan.memory_words = 512;
  plan.intervals = 4;
  plan.seu.upset_probability_per_word = 2e-3;
  plan.seu.mbu_probability = 0.1;

  for (Protection protection :
       {Protection::kNone, Protection::kEdac, Protection::kTmr}) {
    plan.protection = protection;
    ThreadPool serial(0);
    ThreadPool threaded(3);
    const ScrubCampaignResult a = run_scrub_campaign(plan, &serial);
    const ScrubCampaignResult b = run_scrub_campaign(plan, &threaded);
    ASSERT_EQ(a.per_replica.size(), b.per_replica.size());
    for (std::size_t i = 0; i < a.per_replica.size(); ++i) {
      expect_same_report(a.per_replica[i], b.per_replica[i]);
    }
    expect_same_report(a.total, b.total);
    EXPECT_GT(a.total.injected_upsets, 0u);
  }
}

hw::Module make_counter_module() {
  hw::Module m("campaign_counter");
  const hw::WireId one = m.make_const(1, 1);
  const hw::WireId d = m.add_wire(8, "d");
  const hw::WireId q = m.make_register(d, one, 0, "q");
  const hw::WireId inc = m.make_const(1, 8);
  hw::Cell add;
  add.kind = hw::CellKind::kAdd;
  add.inputs = {q, inc};
  add.outputs = {d};
  m.add_cell(std::move(add));
  m.add_output(q, "q");
  return m;
}

TEST(Campaign, NetlistSeuParallelBitIdenticalToSerial) {
  const hw::Module module = make_counter_module();
  NetlistSeuPlan plan;
  plan.replicas = 12;
  plan.cycles_before = 3;
  plan.cycles_after = 8;

  ThreadPool serial(0);
  ThreadPool threaded(4);
  const NetlistSeuResult a = run_netlist_seu_campaign(module, plan, &serial);
  const NetlistSeuResult b = run_netlist_seu_campaign(module, plan, &threaded);
  ASSERT_EQ(a.per_replica.size(), b.per_replica.size());
  for (std::size_t i = 0; i < a.per_replica.size(); ++i) {
    EXPECT_EQ(a.per_replica[i].target, b.per_replica[i].target);
    EXPECT_EQ(a.per_replica[i].bit, b.per_replica[i].bit);
    EXPECT_EQ(a.per_replica[i].diverged, b.per_replica[i].diverged);
    EXPECT_EQ(a.per_replica[i].first_divergence_cycle,
              b.per_replica[i].first_divergence_cycle);
  }
  EXPECT_EQ(a.diverged, b.diverged);
  // Flipping a bit of the sole counter register always corrupts its count.
  EXPECT_EQ(a.diverged, plan.replicas);
  for (const NetlistSeuOutcome& outcome : a.per_replica) {
    EXPECT_EQ(outcome.first_divergence_cycle, 0u);
  }
}

}  // namespace
}  // namespace hermes::fault

namespace hermes::hls {
namespace {

TEST(Eucalyptus, ParallelSweepIdenticalToSerial) {
  const TechLibrary lib(ng_ultra());
  SweepConfig config;
  config.widths = {8, 32};
  config.pipeline_stages = {0, 2};
  config.clock_periods_ns = {4.0, 10.0};

  ThreadPool serial(0);
  ThreadPool threaded(4);
  const auto a = run_sweep(lib, config, &serial);
  const auto b = run_sweep(lib, config, &threaded);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].op, b[i].op);
    EXPECT_EQ(a[i].width, b[i].width);
    EXPECT_EQ(a[i].pipeline_stages, b[i].pipeline_stages);
    EXPECT_EQ(a[i].clock_period_ns, b[i].clock_period_ns);
    EXPECT_EQ(a[i].delay_ns, b[i].delay_ns);
    EXPECT_EQ(a[i].latency, b[i].latency);
    EXPECT_EQ(a[i].meets_timing, b[i].meets_timing);
    EXPECT_EQ(a[i].fmax_mhz, b[i].fmax_mhz);
    EXPECT_EQ(a[i].cost.luts, b[i].cost.luts);
    EXPECT_EQ(a[i].cost.ffs, b[i].cost.ffs);
  }
}

}  // namespace
}  // namespace hermes::hls
