// Tests for the configurable AXI cache + prefetcher (the paper's named
// future-work extension: caching/prefetching with customizable size,
// associativity, ...).
#include <gtest/gtest.h>

#include "axi/cache.hpp"
#include "axi/hls_axi.hpp"
#include "common/rng.hpp"
#include "hls/flow.hpp"

namespace hermes::axi {
namespace {

MemoryTiming slow_memory() {
  MemoryTiming timing;
  timing.read_latency = 20;
  timing.write_latency = 16;
  return timing;
}

TEST(Cache, ReadsThroughAndHitsOnReuse) {
  AxiSlaveMemory ddr(4096, slow_memory());
  ddr.poke_word(0x100, 0xDEADBEEF, 4);
  AxiMaster master(ddr);
  AxiCache cache(master, {});
  EXPECT_EQ(cache.read_word(0x100, 4), 0xDEADBEEFu);
  EXPECT_EQ(cache.stats().misses, 1u);
  const std::uint64_t cycles_after_miss = cache.stats().cycles;
  // Same line: hits, one cycle each.
  EXPECT_EQ(cache.read_word(0x100, 4), 0xDEADBEEFu);
  EXPECT_EQ(cache.read_word(0x104, 4), 0u);
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().cycles, cycles_after_miss + 2);
}

TEST(Cache, WriteBackDelaysMemoryUpdate) {
  AxiSlaveMemory ddr(4096, slow_memory());
  AxiMaster master(ddr);
  CacheConfig config;
  config.write_back = true;
  AxiCache cache(master, config);
  cache.write_word(0x40, 0x1234, 4);
  // Dirty in cache, memory still stale.
  EXPECT_EQ(ddr.peek_word(0x40, 4), 0u);
  EXPECT_EQ(cache.read_word(0x40, 4), 0x1234u);
  cache.flush();
  EXPECT_EQ(ddr.peek_word(0x40, 4), 0x1234u);
  EXPECT_GE(cache.stats().writebacks, 1u);
}

TEST(Cache, WriteThroughUpdatesMemoryImmediately) {
  AxiSlaveMemory ddr(4096, slow_memory());
  AxiMaster master(ddr);
  CacheConfig config;
  config.write_back = false;
  AxiCache cache(master, config);
  cache.write_word(0x40, 0x5678, 4);
  EXPECT_EQ(ddr.peek_word(0x40, 4), 0x5678u);
  cache.flush();  // nothing dirty
  EXPECT_EQ(cache.stats().writebacks, 0u);
}

TEST(Cache, EvictionWritesBackDirtyLine) {
  AxiSlaveMemory ddr(1 << 16, slow_memory());
  AxiMaster master(ddr);
  CacheConfig config;
  config.size_bytes = 128;  // 2 sets x 2 ways x 32B
  config.associativity = 2;
  config.line_bytes = 32;
  AxiCache cache(master, config);
  cache.write_word(0x0, 0xAA, 4);
  // Three more lines mapping to set 0 (stride = line_bytes * num_sets = 64).
  cache.read_word(0x40, 4);
  cache.read_word(0x80, 4);   // evicts one of the first two
  cache.read_word(0xC0, 4);
  cache.flush();
  EXPECT_EQ(ddr.peek_word(0x0, 4), 0xAAu);  // dirty line survived eviction
  EXPECT_GE(cache.stats().evictions, 2u);
}

TEST(Cache, AssociativityAbsorbsConflicts) {
  // Ping-pong between two lines in the same set: direct-mapped thrashes,
  // 2-way hits after the first round.
  auto run = [](unsigned ways) {
    AxiSlaveMemory ddr(1 << 16, slow_memory());
    AxiMaster master(ddr);
    CacheConfig config;
    config.size_bytes = 256;
    config.associativity = ways;
    config.line_bytes = 32;
    AxiCache cache(master, config);
    const std::size_t sets = 256 / (ways * 32);
    const std::uint64_t stride = 32 * sets;  // same set every time
    for (int round = 0; round < 16; ++round) {
      cache.read_word(0, 4);
      cache.read_word(stride, 4);
    }
    return cache.stats();
  };
  const CacheStats direct = run(1);
  const CacheStats two_way = run(2);
  EXPECT_EQ(direct.misses, 32u);  // thrash forever
  EXPECT_EQ(two_way.misses, 2u);  // compulsory only
  EXPECT_LT(two_way.cycles, direct.cycles / 4);
}

TEST(Cache, LruKeepsHotLine) {
  AxiSlaveMemory ddr(1 << 16, slow_memory());
  AxiMaster master(ddr);
  CacheConfig config;
  config.size_bytes = 64;  // 1 set x 2 ways x 32B
  config.associativity = 2;
  config.line_bytes = 32;
  AxiCache cache(master, config);
  cache.read_word(0x00, 4);   // A
  cache.read_word(0x20, 4);   // B
  cache.read_word(0x00, 4);   // touch A (B becomes LRU)
  cache.read_word(0x40, 4);   // C evicts B
  const std::uint64_t misses_before = cache.stats().misses;
  cache.read_word(0x00, 4);   // A must still be resident
  EXPECT_EQ(cache.stats().misses, misses_before);
}

TEST(Cache, PrefetchTurnsSequentialMissesIntoHits) {
  auto run = [](unsigned depth) {
    AxiSlaveMemory ddr(1 << 16, slow_memory());
    AxiMaster master(ddr);
    CacheConfig config;
    config.size_bytes = 4096;
    config.prefetch_lines = depth;
    AxiCache cache(master, config);
    for (std::uint64_t addr = 0; addr < 2048; addr += 4) {
      cache.read_word(addr, 4);
    }
    return cache.stats();
  };
  const CacheStats cold = run(0);
  const CacheStats prefetched = run(2);
  EXPECT_GT(prefetched.hit_rate(), cold.hit_rate());
  EXPECT_GT(prefetched.prefetch_hits, 0u);
  EXPECT_LT(prefetched.misses, cold.misses);
}

TEST(Cache, RandomizedConsistencyAgainstFlatMemory) {
  // Arbitrary read/write mix through the cache must read exactly what a
  // flat reference memory would.
  Rng rng(88);
  for (unsigned ways : {1u, 2u, 4u}) {
    AxiSlaveMemory ddr(8192, {});
    AxiMaster master(ddr);
    CacheConfig config;
    config.size_bytes = 512;
    config.associativity = ways;
    config.line_bytes = 32;
    AxiCache cache(master, config);
    std::vector<std::uint32_t> reference(2048, 0);
    for (int op = 0; op < 4000; ++op) {
      const std::uint64_t index = rng.next_below(2048);
      if (rng.next_bool(0.4)) {
        const auto value = static_cast<std::uint32_t>(rng.next_u64());
        cache.write_word(index * 4, value, 4);
        reference[index] = value;
      } else {
        EXPECT_EQ(cache.read_word(index * 4, 4), reference[index])
            << "ways=" << ways << " index=" << index;
      }
    }
    cache.flush();
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(ddr.peek_word(i * 4, 4), reference[i]) << i;
    }
  }
}

TEST(HlsAxiCached, MatchesAndBeatsUncachedPerAccess) {
  const char* source = R"(
    int32_t smooth(int32_t data[128], int32_t out[128]) {
      int32_t acc = 0;
      for (int i = 1; i < 127; i = i + 1) {
        out[i] = (data[i - 1] + data[i] + data[i + 1]) / 3;
        acc = acc + out[i];
      }
      return acc;
    }
  )";
  hls::FlowOptions options;
  options.top = "smooth";
  auto flow = hls::run_flow(source, options);
  ASSERT_TRUE(flow.ok()) << flow.status().to_string();
  const AxiMap map = default_axi_map(flow.value().function);

  std::uint64_t uncached_cycles = 0, cached_cycles = 0;
  for (AxiMode mode : {AxiMode::kPerAccess, AxiMode::kPerAccessCached}) {
    AxiSlaveMemory ddr(1 << 16, slow_memory());
    for (std::size_t i = 0; i < 128; ++i) {
      ddr.poke_word(map.base_addr.at(0) + i * 4, i * 5 + 1, 4);
    }
    CacheConfig cache_config;
    cache_config.size_bytes = 1024;
    cache_config.prefetch_lines = 1;
    auto run = run_with_axi(flow.value(), {}, ddr, map, mode, cache_config);
    ASSERT_TRUE(run.ok()) << run.status().to_string();
    EXPECT_TRUE(run.value().match) << run.value().mismatch;
    if (mode == AxiMode::kPerAccess) {
      uncached_cycles = run.value().total_cycles;
    } else {
      cached_cycles = run.value().total_cycles;
      EXPECT_GT(run.value().cache.hit_rate(), 0.8)
          << "stencil reuse must hit in the cache";
    }
  }
  EXPECT_LT(cached_cycles * 2, uncached_cycles)
      << "the cache must drastically reduce the average access time "
         "(paper Sec. II)";
}

TEST(HlsAxiCached, FinalDdrContentsCorrect) {
  const char* source = R"(
    void fill(int32_t out[64], int seed) {
      for (int i = 0; i < 64; i = i + 1) {
        out[i] = seed * i + (i >> 1);
      }
    }
  )";
  hls::FlowOptions options;
  options.top = "fill";
  auto flow = hls::run_flow(source, options);
  ASSERT_TRUE(flow.ok());
  const AxiMap map = default_axi_map(flow.value().function);
  AxiSlaveMemory ddr(1 << 16, {});
  auto run = run_with_axi(flow.value(), {7}, ddr, map,
                          AxiMode::kPerAccessCached, {});
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run.value().match) << run.value().mismatch;
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(ddr.peek_word(map.base_addr.at(0) + i * 4, 4),
              static_cast<std::uint32_t>(7 * i + (i >> 1)));
  }
}

}  // namespace
}  // namespace hermes::axi
