// Tests for dynamically controlled dataflow accelerators vs monolithic FSM
// synthesis (paper Sec. II, ref [14]), and for the per-node retry ladder
// under injected execution faults.
#include <gtest/gtest.h>

#include "dataflow/taskgraph.hpp"
#include "fault/injector.hpp"

namespace hermes::df {
namespace {

/// Linear pipeline: src -> t1 -> t2 -> sink, each task 10 cycles, ii=10.
TaskGraph pipeline_graph(unsigned stages, std::uint64_t latency,
                         std::uint64_t ii = 0) {
  TaskGraph graph;
  for (unsigned i = 0; i < stages; ++i) {
    Task task;
    task.name = "t" + std::to_string(i);
    task.latency = latency;
    task.ii = ii;
    task.fsm_states = static_cast<unsigned>(latency);
    task.luts = 100;
    graph.add_task(task);
  }
  for (unsigned i = 0; i + 1 < stages; ++i) graph.connect(i, i + 1);
  graph.sources = {0};
  graph.sinks = {stages - 1};
  return graph;
}

TEST(Dataflow, SingleTaskSingleToken) {
  TaskGraph graph = pipeline_graph(1, 10);
  auto stats = simulate_dataflow(graph, 1);
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  EXPECT_EQ(stats.value().makespan, 10u);
  EXPECT_EQ(stats.value().tokens_processed, 1u);
}

TEST(Dataflow, PipelineOverlapsTokens) {
  // 4-stage pipeline, 10-cycle stages, fully pipelined (ii = latency means
  // a stage can only hold one token; channels provide the overlap).
  TaskGraph graph = pipeline_graph(4, 10);
  auto one = simulate_dataflow(graph, 1);
  auto many = simulate_dataflow(graph, 16);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(many.ok());
  EXPECT_EQ(one.value().makespan, 40u);  // fill latency
  // Steady state: ~10 cycles per token after the fill, not 40.
  EXPECT_LT(many.value().makespan, 40u + 16u * 11u);
  EXPECT_GE(many.value().makespan, 40u + 15u * 10u - 10u);
}

TEST(Dataflow, UtilizationIncreasesWithLoad) {
  TaskGraph graph = pipeline_graph(3, 10);
  auto light = simulate_dataflow(graph, 2);
  auto heavy = simulate_dataflow(graph, 64);
  ASSERT_TRUE(light.ok());
  ASSERT_TRUE(heavy.ok());
  EXPECT_GT(heavy.value().avg_utilization, light.value().avg_utilization);
  EXPECT_GT(heavy.value().avg_utilization, 0.8);
}

TEST(Dataflow, ParallelBranchesRunConcurrently) {
  // Fork-join: src feeds N parallel workers feeding a sink.
  const unsigned kWorkers = 4;
  TaskGraph graph;
  Task src{"src", 1, 0, 1, 10};
  const std::size_t s = graph.add_task(src);
  Task sink{"sink", 1, 0, 1, 10};
  const std::size_t k = graph.add_task(sink);
  for (unsigned i = 0; i < kWorkers; ++i) {
    Task worker{"w" + std::to_string(i), 40, 0, 40, 200};
    const std::size_t w = graph.add_task(worker);
    graph.connect(s, w);
    graph.connect(w, k);
  }
  graph.sources = {s};
  graph.sinks = {k};
  auto stats = simulate_dataflow(graph, 1);
  ASSERT_TRUE(stats.ok());
  // All four workers run in parallel: makespan ~ 1 + 40 + 1, not 4*40.
  EXPECT_LT(stats.value().makespan, 50u);
}

TEST(Dataflow, DeadlockDetected) {
  // Two tasks in a cycle with no initial tokens: nothing can ever fire.
  TaskGraph graph;
  Task a{"a", 5, 0, 5, 10};
  Task b{"b", 5, 0, 5, 10};
  graph.add_task(a);
  graph.add_task(b);
  graph.connect(0, 1);
  graph.connect(1, 0);
  graph.sources = {};  // no external input
  graph.sinks = {1};
  auto stats = simulate_dataflow(graph, 1);
  EXPECT_FALSE(stats.ok());
}

TEST(Monolithic, SerializedStatesAreLinear) {
  TaskGraph graph = pipeline_graph(5, 10);
  const MonolithicStats stats = estimate_monolithic(graph);
  EXPECT_EQ(stats.serialized_states, 50u);
  EXPECT_EQ(stats.serialized_latency, 50u);
}

TEST(Monolithic, ProductStatesExplodeWithParallelism) {
  // N independent parallel flows: the centralized concurrent controller
  // must track the cross product of their sub-FSMs.
  double previous = 0;
  for (unsigned flows = 1; flows <= 6; ++flows) {
    TaskGraph graph;
    for (unsigned i = 0; i < flows; ++i) {
      Task task{"f" + std::to_string(i), 16, 0, 16, 100};
      graph.add_task(task);
      graph.sources.push_back(i);
      graph.sinks.push_back(i);
    }
    const MonolithicStats stats = estimate_monolithic(graph);
    if (flows >= 2) {
      EXPECT_GE(stats.product_states, previous * 15.9)
          << "state product must grow ~exponentially";
    }
    previous = stats.product_states;
  }
  // 6 flows of 16 states: 16^6 = 16.7M controller states.
  EXPECT_GT(previous, 1.6e7);
}

TEST(Monolithic, DataflowControllerStaysLinear) {
  for (unsigned flows : {2u, 4u, 8u}) {
    TaskGraph graph;
    for (unsigned i = 0; i < flows; ++i) {
      Task task{"f" + std::to_string(i), 16, 0, 16, 100};
      graph.add_task(task);
      graph.sources.push_back(i);
      graph.sinks.push_back(i);
    }
    auto dynamic = simulate_dataflow(graph, 4);
    ASSERT_TRUE(dynamic.ok());
    const MonolithicStats mono = estimate_monolithic(graph);
    EXPECT_EQ(dynamic.value().controller_states, flows * 16u)
        << "dynamically controlled: per-task FSMs, linear in flows";
    EXPECT_GT(mono.product_states,
              static_cast<double>(dynamic.value().controller_states));
  }
}

TEST(TaskFromFlow, ExtractsProfile) {
  hls::FlowOptions options;
  options.top = "f";
  auto flow = hls::run_flow(
      "int f(int a, int b) { return a * b + a; }", options);
  ASSERT_TRUE(flow.ok());
  const Task task = task_from_flow(flow.value(), 12);
  EXPECT_EQ(task.name, "f");
  EXPECT_EQ(task.latency, 12u);
  EXPECT_EQ(task.fsm_states, flow.value().fsm_states);
  EXPECT_GT(task.luts, 0u);
}

}  // namespace
}  // namespace hermes::df

// Channel-capacity / backpressure tests appended as a separate suite.
namespace hermes::df {
namespace {

TEST(Backpressure, NarrowChannelThrottlesFastProducer) {
  // Fast producer (1 cycle) feeding a slow consumer (20 cycles) through a
  // FIFO: tokens cannot pile up beyond the channel capacity, so the
  // producer's firing rate collapses to the consumer's.
  for (std::size_t capacity : {1u, 4u, 16u}) {
    TaskGraph graph;
    Task producer{"prod", 1, 0, 1, 10};
    Task consumer{"cons", 20, 0, 20, 10};
    const std::size_t p = graph.add_task(producer);
    const std::size_t c = graph.add_task(consumer);
    graph.connect(p, c, capacity);
    graph.sources = {p};
    graph.sinks = {c};
    auto stats = simulate_dataflow(graph, 32);
    ASSERT_TRUE(stats.ok()) << "capacity " << capacity;
    // Steady state is consumer-bound: ~20 cycles per token regardless of
    // buffering; more capacity only hides the startup transient.
    EXPECT_GE(stats.value().makespan, 32u * 20u);
    EXPECT_LE(stats.value().makespan, 32u * 20u + 64u);
  }
}

TEST(Backpressure, BufferingSmoothsBurstyStage) {
  // Two-stage pipeline where stage latencies alternate via ii: with a deep
  // buffer the pipeline sustains the average rate; capacity 1 serializes to
  // the sum of latencies per token.
  auto run = [](std::size_t capacity) {
    TaskGraph graph;
    Task a{"a", 5, 0, 5, 10};
    Task b{"b", 5, 0, 5, 10};
    const std::size_t ta = graph.add_task(a);
    const std::size_t tb = graph.add_task(b);
    graph.connect(ta, tb, capacity);
    graph.sources = {ta};
    graph.sinks = {tb};
    auto stats = simulate_dataflow(graph, 64);
    EXPECT_TRUE(stats.ok());
    return stats.value().makespan;
  };
  const std::uint64_t deep = run(8);
  const std::uint64_t shallow = run(1);
  EXPECT_LE(deep, shallow);
  // Deep buffering approaches 5 cycles/token after the fill.
  EXPECT_LE(deep, 64u * 5u + 16u);
}

fault::FaultPlan node_fault_plan(std::string point,
                                 fault::FaultSchedule schedule,
                                 std::uint64_t seed = 7) {
  fault::FaultPlan plan;
  plan.seed = seed;
  plan.points.push_back({std::move(point), schedule});
  return plan;
}

TEST(NodeRetry, TransientFaultIsRetriedAndSucceeds) {
  fault::FaultSchedule sched;
  sched.probability = 1.0;
  sched.max_fires = 1;  // exactly the first completion faults
  fault::FaultInjector inj(node_fault_plan("df.node.transient", sched));

  TaskGraph graph = pipeline_graph(2, 10);
  DataflowOptions options;
  options.injector = &inj;
  DataflowStats observed;
  options.stats_out = &observed;
  auto stats = simulate_dataflow(graph, 1, options);
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  EXPECT_EQ(stats.value().node_retries, 1u);
  EXPECT_EQ(stats.value().node_failures, 0u);
  // The re-execution costs another latency plus the backoff.
  EXPECT_EQ(stats.value().makespan,
            20u + 10u + options.retry.backoff_cycles);
  // The first completion is task 0 (task 1 is still starved then).
  ASSERT_EQ(stats.value().retries_per_task.size(), 2u);
  EXPECT_EQ(stats.value().retries_per_task[0], 1u);
  EXPECT_EQ(stats.value().retries_per_task[1], 0u);
  EXPECT_EQ(observed.node_retries, stats.value().node_retries);
}

TEST(NodeRetry, PermanentFaultPropagatesWithoutRetry) {
  fault::FaultSchedule sched;
  sched.probability = 1.0;
  sched.max_fires = 1;
  fault::FaultInjector inj(node_fault_plan("df.node.permanent", sched));

  TaskGraph graph = pipeline_graph(2, 10);
  DataflowOptions options;
  options.injector = &inj;
  DataflowStats observed;
  options.stats_out = &observed;
  auto stats = simulate_dataflow(graph, 1, options);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), ErrorCode::kInvalidArgument);
  // stats_out is filled even on failure; a permanent fault burns no retries.
  EXPECT_EQ(observed.node_retries, 0u);
  EXPECT_EQ(observed.node_failures, 1u);
}

TEST(NodeRetry, ExhaustedBudgetReturnsOriginalCode) {
  // Every attempt faults: the ladder re-executes max_retries times and then
  // surfaces the code of the transient fault itself, not a wrapper.
  for (const auto& [point, code] :
       {std::pair<const char*, ErrorCode>{"df.node.transient",
                                          ErrorCode::kInternal},
        std::pair<const char*, ErrorCode>{"df.node.overrun",
                                          ErrorCode::kDeadlineExceeded}}) {
    fault::FaultSchedule sched;
    sched.probability = 1.0;  // unbounded: every re-execution faults again
    fault::FaultInjector inj(node_fault_plan(point, sched));

    TaskGraph graph = pipeline_graph(2, 10);
    DataflowOptions options;
    options.injector = &inj;
    options.retry.max_retries = 2;
    DataflowStats observed;
    options.stats_out = &observed;
    auto stats = simulate_dataflow(graph, 1, options);
    ASSERT_FALSE(stats.ok()) << point;
    EXPECT_EQ(stats.status().code(), code) << point;
    EXPECT_EQ(observed.node_retries, 2u) << point;
    EXPECT_EQ(observed.node_failures, 1u) << point;
  }
}

TEST(NodeRetry, SameSeedSameRetryCounts) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto run_once = [seed](DataflowStats* out) {
      constexpr std::string_view kPoints[] = {
          "df.node.transient", "df.node.overrun", "df.node.permanent"};
      fault::FaultInjector inj(fault::make_random_plan(seed, kPoints));
      TaskGraph graph = pipeline_graph(3, 5);
      DataflowOptions options;
      options.injector = &inj;
      options.stats_out = out;
      return simulate_dataflow(graph, 8, options);
    };
    DataflowStats a, b;
    const auto ra = run_once(&a);
    const auto rb = run_once(&b);
    ASSERT_EQ(ra.ok(), rb.ok()) << "seed " << seed;
    if (!ra.ok()) {
      EXPECT_EQ(ra.status().code(), rb.status().code()) << "seed " << seed;
    }
    EXPECT_EQ(a.node_retries, b.node_retries) << "seed " << seed;
    EXPECT_EQ(a.node_failures, b.node_failures) << "seed " << seed;
    EXPECT_EQ(a.makespan, b.makespan) << "seed " << seed;
    EXPECT_EQ(a.retries_per_task, b.retries_per_task) << "seed " << seed;
  }
}

TEST(NodeRetry, FaultFreeRunMatchesLegacyOverload) {
  // No injector: the options-based entry point must be bit-identical to the
  // original (graph, tokens, max_cycles) behaviour.
  TaskGraph graph = pipeline_graph(4, 10);
  auto legacy = simulate_dataflow(graph, 16);
  DataflowOptions options;
  auto with_options = simulate_dataflow(graph, 16, options);
  ASSERT_TRUE(legacy.ok());
  ASSERT_TRUE(with_options.ok());
  EXPECT_EQ(legacy.value().makespan, with_options.value().makespan);
  EXPECT_EQ(with_options.value().node_retries, 0u);
  EXPECT_EQ(with_options.value().node_failures, 0u);
}

TEST(Backpressure, UtilizationReflectsBottleneck) {
  TaskGraph graph;
  Task fast{"fast", 2, 0, 2, 10};
  Task slow{"slow", 10, 0, 10, 10};
  const std::size_t f = graph.add_task(fast);
  const std::size_t s = graph.add_task(slow);
  graph.connect(f, s, 2);
  graph.sources = {f};
  graph.sinks = {s};
  auto stats = simulate_dataflow(graph, 50);
  ASSERT_TRUE(stats.ok());
  // The slow stage saturates (~100%), the fast one idles (~20%): the
  // average sits near 60%.
  EXPECT_NEAR(stats.value().avg_utilization, 0.6, 0.08);
}

}  // namespace
}  // namespace hermes::df
