// Tests for dynamically controlled dataflow accelerators vs monolithic FSM
// synthesis (paper Sec. II, ref [14]).
#include <gtest/gtest.h>

#include "dataflow/taskgraph.hpp"

namespace hermes::df {
namespace {

/// Linear pipeline: src -> t1 -> t2 -> sink, each task 10 cycles, ii=10.
TaskGraph pipeline_graph(unsigned stages, std::uint64_t latency,
                         std::uint64_t ii = 0) {
  TaskGraph graph;
  for (unsigned i = 0; i < stages; ++i) {
    Task task;
    task.name = "t" + std::to_string(i);
    task.latency = latency;
    task.ii = ii;
    task.fsm_states = static_cast<unsigned>(latency);
    task.luts = 100;
    graph.add_task(task);
  }
  for (unsigned i = 0; i + 1 < stages; ++i) graph.connect(i, i + 1);
  graph.sources = {0};
  graph.sinks = {stages - 1};
  return graph;
}

TEST(Dataflow, SingleTaskSingleToken) {
  TaskGraph graph = pipeline_graph(1, 10);
  auto stats = simulate_dataflow(graph, 1);
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  EXPECT_EQ(stats.value().makespan, 10u);
  EXPECT_EQ(stats.value().tokens_processed, 1u);
}

TEST(Dataflow, PipelineOverlapsTokens) {
  // 4-stage pipeline, 10-cycle stages, fully pipelined (ii = latency means
  // a stage can only hold one token; channels provide the overlap).
  TaskGraph graph = pipeline_graph(4, 10);
  auto one = simulate_dataflow(graph, 1);
  auto many = simulate_dataflow(graph, 16);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(many.ok());
  EXPECT_EQ(one.value().makespan, 40u);  // fill latency
  // Steady state: ~10 cycles per token after the fill, not 40.
  EXPECT_LT(many.value().makespan, 40u + 16u * 11u);
  EXPECT_GE(many.value().makespan, 40u + 15u * 10u - 10u);
}

TEST(Dataflow, UtilizationIncreasesWithLoad) {
  TaskGraph graph = pipeline_graph(3, 10);
  auto light = simulate_dataflow(graph, 2);
  auto heavy = simulate_dataflow(graph, 64);
  ASSERT_TRUE(light.ok());
  ASSERT_TRUE(heavy.ok());
  EXPECT_GT(heavy.value().avg_utilization, light.value().avg_utilization);
  EXPECT_GT(heavy.value().avg_utilization, 0.8);
}

TEST(Dataflow, ParallelBranchesRunConcurrently) {
  // Fork-join: src feeds N parallel workers feeding a sink.
  const unsigned kWorkers = 4;
  TaskGraph graph;
  Task src{"src", 1, 0, 1, 10};
  const std::size_t s = graph.add_task(src);
  Task sink{"sink", 1, 0, 1, 10};
  const std::size_t k = graph.add_task(sink);
  for (unsigned i = 0; i < kWorkers; ++i) {
    Task worker{"w" + std::to_string(i), 40, 0, 40, 200};
    const std::size_t w = graph.add_task(worker);
    graph.connect(s, w);
    graph.connect(w, k);
  }
  graph.sources = {s};
  graph.sinks = {k};
  auto stats = simulate_dataflow(graph, 1);
  ASSERT_TRUE(stats.ok());
  // All four workers run in parallel: makespan ~ 1 + 40 + 1, not 4*40.
  EXPECT_LT(stats.value().makespan, 50u);
}

TEST(Dataflow, DeadlockDetected) {
  // Two tasks in a cycle with no initial tokens: nothing can ever fire.
  TaskGraph graph;
  Task a{"a", 5, 0, 5, 10};
  Task b{"b", 5, 0, 5, 10};
  graph.add_task(a);
  graph.add_task(b);
  graph.connect(0, 1);
  graph.connect(1, 0);
  graph.sources = {};  // no external input
  graph.sinks = {1};
  auto stats = simulate_dataflow(graph, 1);
  EXPECT_FALSE(stats.ok());
}

TEST(Monolithic, SerializedStatesAreLinear) {
  TaskGraph graph = pipeline_graph(5, 10);
  const MonolithicStats stats = estimate_monolithic(graph);
  EXPECT_EQ(stats.serialized_states, 50u);
  EXPECT_EQ(stats.serialized_latency, 50u);
}

TEST(Monolithic, ProductStatesExplodeWithParallelism) {
  // N independent parallel flows: the centralized concurrent controller
  // must track the cross product of their sub-FSMs.
  double previous = 0;
  for (unsigned flows = 1; flows <= 6; ++flows) {
    TaskGraph graph;
    for (unsigned i = 0; i < flows; ++i) {
      Task task{"f" + std::to_string(i), 16, 0, 16, 100};
      graph.add_task(task);
      graph.sources.push_back(i);
      graph.sinks.push_back(i);
    }
    const MonolithicStats stats = estimate_monolithic(graph);
    if (flows >= 2) {
      EXPECT_GE(stats.product_states, previous * 15.9)
          << "state product must grow ~exponentially";
    }
    previous = stats.product_states;
  }
  // 6 flows of 16 states: 16^6 = 16.7M controller states.
  EXPECT_GT(previous, 1.6e7);
}

TEST(Monolithic, DataflowControllerStaysLinear) {
  for (unsigned flows : {2u, 4u, 8u}) {
    TaskGraph graph;
    for (unsigned i = 0; i < flows; ++i) {
      Task task{"f" + std::to_string(i), 16, 0, 16, 100};
      graph.add_task(task);
      graph.sources.push_back(i);
      graph.sinks.push_back(i);
    }
    auto dynamic = simulate_dataflow(graph, 4);
    ASSERT_TRUE(dynamic.ok());
    const MonolithicStats mono = estimate_monolithic(graph);
    EXPECT_EQ(dynamic.value().controller_states, flows * 16u)
        << "dynamically controlled: per-task FSMs, linear in flows";
    EXPECT_GT(mono.product_states,
              static_cast<double>(dynamic.value().controller_states));
  }
}

TEST(TaskFromFlow, ExtractsProfile) {
  hls::FlowOptions options;
  options.top = "f";
  auto flow = hls::run_flow(
      "int f(int a, int b) { return a * b + a; }", options);
  ASSERT_TRUE(flow.ok());
  const Task task = task_from_flow(flow.value(), 12);
  EXPECT_EQ(task.name, "f");
  EXPECT_EQ(task.latency, 12u);
  EXPECT_EQ(task.fsm_states, flow.value().fsm_states);
  EXPECT_GT(task.luts, 0u);
}

}  // namespace
}  // namespace hermes::df

// Channel-capacity / backpressure tests appended as a separate suite.
namespace hermes::df {
namespace {

TEST(Backpressure, NarrowChannelThrottlesFastProducer) {
  // Fast producer (1 cycle) feeding a slow consumer (20 cycles) through a
  // FIFO: tokens cannot pile up beyond the channel capacity, so the
  // producer's firing rate collapses to the consumer's.
  for (std::size_t capacity : {1u, 4u, 16u}) {
    TaskGraph graph;
    Task producer{"prod", 1, 0, 1, 10};
    Task consumer{"cons", 20, 0, 20, 10};
    const std::size_t p = graph.add_task(producer);
    const std::size_t c = graph.add_task(consumer);
    graph.connect(p, c, capacity);
    graph.sources = {p};
    graph.sinks = {c};
    auto stats = simulate_dataflow(graph, 32);
    ASSERT_TRUE(stats.ok()) << "capacity " << capacity;
    // Steady state is consumer-bound: ~20 cycles per token regardless of
    // buffering; more capacity only hides the startup transient.
    EXPECT_GE(stats.value().makespan, 32u * 20u);
    EXPECT_LE(stats.value().makespan, 32u * 20u + 64u);
  }
}

TEST(Backpressure, BufferingSmoothsBurstyStage) {
  // Two-stage pipeline where stage latencies alternate via ii: with a deep
  // buffer the pipeline sustains the average rate; capacity 1 serializes to
  // the sum of latencies per token.
  auto run = [](std::size_t capacity) {
    TaskGraph graph;
    Task a{"a", 5, 0, 5, 10};
    Task b{"b", 5, 0, 5, 10};
    const std::size_t ta = graph.add_task(a);
    const std::size_t tb = graph.add_task(b);
    graph.connect(ta, tb, capacity);
    graph.sources = {ta};
    graph.sinks = {tb};
    auto stats = simulate_dataflow(graph, 64);
    EXPECT_TRUE(stats.ok());
    return stats.value().makespan;
  };
  const std::uint64_t deep = run(8);
  const std::uint64_t shallow = run(1);
  EXPECT_LE(deep, shallow);
  // Deep buffering approaches 5 cycles/token after the fill.
  EXPECT_LE(deep, 64u * 5u + 16u);
}

TEST(Backpressure, UtilizationReflectsBottleneck) {
  TaskGraph graph;
  Task fast{"fast", 2, 0, 2, 10};
  Task slow{"slow", 10, 0, 10, 10};
  const std::size_t f = graph.add_task(fast);
  const std::size_t s = graph.add_task(slow);
  graph.connect(f, s, 2);
  graph.sources = {f};
  graph.sinks = {s};
  auto stats = simulate_dataflow(graph, 50);
  ASSERT_TRUE(stats.ok());
  // The slow stage saturates (~100%), the fast one idles (~20%): the
  // average sits near 60%.
  EXPECT_NEAR(stats.value().avg_utilization, 0.6, 0.08);
}

}  // namespace
}  // namespace hermes::df
