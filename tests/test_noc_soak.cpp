// NoC chaos soak: seeded random fault plans thrown at the canonical
// contention scenario (4 ports in 2 QoS classes, 6 endpoints over 3
// containment domains, camera + codec + packet streams), every family run
// twice per seed with the fabric fingerprint as the equality witness.
//
// Families:
//   * arbitration-stall storm — grants withheld + credits leaking, the
//     fabric must absorb both without losing a beat;
//   * dropped/corrupt-beat storm — the timeout/retry and CRC/NAK ladders
//     under sustained fire, never a silent corruption;
//   * endpoint-wedge quarantine — wedged endpoints trip the progress
//     watchdog, their domains are drained and parked, other domains flow;
//   * full-catalog bedlam — every noc.* point armed at once.
#include <gtest/gtest.h>

#include <cstdint>
#include <string_view>

#include "fault/injector.hpp"
#include "noc/noc.hpp"
#include "noc/workload.hpp"
#include "soak_util.hpp"

namespace hermes::noc {
namespace {

using soak::kFnvBasis;
using soak::mix;

constexpr std::uint64_t kStallSeeds = 40;
constexpr std::uint64_t kDropSeeds = 40;
constexpr std::uint64_t kWedgeSeeds = 24;
constexpr std::uint64_t kBedlamSeeds = 24;
static_assert(kStallSeeds + kDropSeeds + kWedgeSeeds + kBedlamSeeds >= 128,
              "the NoC soak must cover at least 128 fault plans");

/// Runs one family member twice and folds the per-seed fingerprints into a
/// family hash; every run must replay bit-identically and stay silent-free.
std::uint64_t soak_family(std::uint64_t first_seed, std::uint64_t seeds,
                          std::span<const std::string_view> points) {
  std::uint64_t family_hash = kFnvBasis;
  for (std::uint64_t seed = first_seed; seed < first_seed + seeds; ++seed) {
    std::uint64_t silent_a = ~0ULL;
    std::uint64_t silent_b = ~0ULL;
    const std::uint64_t a = run_noc_chaos_once(seed, points, &silent_a);
    const std::uint64_t b = run_noc_chaos_once(seed, points, &silent_b);
    EXPECT_EQ(a, b) << "seed " << seed << " did not replay bit-identically";
    EXPECT_EQ(silent_a, 0u) << "seed " << seed << " corrupted silently";
    EXPECT_EQ(silent_b, silent_a);
    family_hash = mix(family_hash, a);
  }
  return family_hash;
}

TEST(NocSoak, ArbitrationStallStormIsDeterministic) {
  constexpr std::string_view kPoints[] = {"noc.arb.stall", "noc.credit.leak"};
  const std::uint64_t hash = soak_family(1, kStallSeeds, kPoints);
  EXPECT_NE(hash, kFnvBasis);
}

TEST(NocSoak, DroppedAndCorruptBeatStormIsDeterministic) {
  constexpr std::string_view kPoints[] = {"noc.beat.drop", "noc.beat.corrupt"};
  const std::uint64_t hash = soak_family(101, kDropSeeds, kPoints);
  EXPECT_NE(hash, kFnvBasis);
}

TEST(NocSoak, EndpointWedgeQuarantineIsDeterministic) {
  constexpr std::string_view kPoints[] = {"noc.endpoint.wedge"};
  const std::uint64_t hash = soak_family(201, kWedgeSeeds, kPoints);
  EXPECT_NE(hash, kFnvBasis);
}

TEST(NocSoak, FullCatalogBedlamIsDeterministic) {
  const std::uint64_t hash =
      soak_family(301, kBedlamSeeds, noc_point_catalog());
  EXPECT_NE(hash, kFnvBasis);
}

/// Under a wedge storm, quarantine must contain the damage: every domain the
/// wedge did not hit completes its traffic in full.
TEST(NocSoak, WedgeQuarantineLeavesHealthyDomainsComplete) {
  for (std::uint64_t seed = 401; seed < 401 + kWedgeSeeds; ++seed) {
    ContentionScenario scenario = make_contention_scenario(seed);
    Crossbar fabric(scenario.fabric, scenario.ports, scenario.endpoints);
    fault::FaultPlan plan;
    plan.seed = seed;
    plan.points.push_back(
        {"noc.endpoint.wedge",
         {.probability = 0.25, .max_fires = 1 + seed % 3}});
    fault::FaultInjector injector(plan);
    fabric.attach_injector(&injector);
    for (PortTraffic& t : scenario.traffic) {
      fabric.bind_workload(t.port, t.beats);
    }
    const FabricResult result = fabric.run();
    ASSERT_TRUE(result.status.ok())
        << "seed " << seed << ": " << result.status.to_string();
    EXPECT_EQ(result.silent, 0u) << "seed " << seed;
    for (unsigned domain = 0; domain < fabric.num_domains(); ++domain) {
      if (fabric.domain_quarantined(domain)) continue;
      EXPECT_EQ(result.domains[domain].failed, 0u)
          << "seed " << seed << ": healthy domain " << domain
          << " lost beats";
    }
  }
}

}  // namespace
}  // namespace hermes::noc
