// XML writer/reader round-trip and the Eucalyptus library round-trip.
#include <gtest/gtest.h>

#include "common/xml_parse.hpp"
#include "hls/eucalyptus.hpp"

namespace hermes {
namespace {

TEST(XmlParse, BasicDocument) {
  auto root = parse_xml(R"(<?xml version="1.0"?>
    <!-- header comment -->
    <top kind="demo">
      <item id="1" value="a&amp;b"/>
      <item id="2">text content</item>
      <nested><deep level="3"/></nested>
    </top>)");
  ASSERT_TRUE(root.ok()) << root.status().to_string();
  const XmlNode& top = *root.value();
  EXPECT_EQ(top.name, "top");
  EXPECT_EQ(top.attr("kind"), "demo");
  ASSERT_EQ(top.children.size(), 3u);
  EXPECT_EQ(top.children[0]->attr("value"), "a&b");
  EXPECT_EQ(top.children[1]->text, "text content");
  EXPECT_EQ(top.children[1]->attr_int("id"), 2);
  const XmlNode* nested = top.child("nested");
  ASSERT_NE(nested, nullptr);
  ASSERT_NE(nested->child("deep"), nullptr);
  EXPECT_EQ(nested->child("deep")->attr_int("level"), 3);
}

TEST(XmlParse, RejectsMalformed) {
  EXPECT_FALSE(parse_xml("<a><b></a></b>").ok());   // mismatched nesting
  EXPECT_FALSE(parse_xml("<a attr></a>").ok());      // attribute without value
  EXPECT_FALSE(parse_xml("<a>").ok());               // unclosed
  EXPECT_FALSE(parse_xml("no markup at all").ok());
}

TEST(Eucalyptus, LibraryXmlRoundTrip) {
  const hls::TechLibrary lib(hls::ng_ultra());
  hls::SweepConfig config;
  config.widths = {8, 32};
  config.pipeline_stages = {0, 2};
  config.clock_periods_ns = {4.0, 10.0};
  const auto points = hls::run_sweep(lib, config);
  const std::string document = hls::to_xml(lib.target(), points);

  std::string device;
  auto loaded = hls::from_xml(document, &device);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(device, "NG-ULTRA");
  ASSERT_EQ(loaded.value().size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& a = points[i];
    const auto& b = loaded.value()[i];
    EXPECT_EQ(a.op, b.op) << i;
    EXPECT_EQ(a.width, b.width) << i;
    EXPECT_EQ(a.pipeline_stages, b.pipeline_stages) << i;
    EXPECT_EQ(a.latency, b.latency) << i;
    EXPECT_EQ(a.meets_timing, b.meets_timing) << i;
    EXPECT_NEAR(a.delay_ns, b.delay_ns, 1e-4) << i;
    EXPECT_EQ(a.cost.luts, b.cost.luts) << i;
    EXPECT_EQ(a.cost.dsps, b.cost.dsps) << i;
    EXPECT_EQ(a.cost.ffs, b.cost.ffs) << i;
  }
}

TEST(Eucalyptus, FromXmlRejectsForeignDocuments) {
  EXPECT_FALSE(hls::from_xml("<other/>").ok());
  EXPECT_FALSE(hls::from_xml(
      "<technology><cell operation=\"warp\" width=\"8\"/></technology>").ok());
  EXPECT_FALSE(hls::from_xml(
      "<technology><cell operation=\"add\" width=\"8\"/></technology>").ok())
      << "cell without timing/area must be rejected";
}

}  // namespace
}  // namespace hermes
