// Differential tests for the bit-sliced 64-replica simulator.
//
// The sliced engine packs 64 replicas into slice words; the scalar engine is
// its oracle. The randomized test tracks a handful of lanes with scalar twin
// simulators — same inputs, same per-lane fault injections — and asserts
// every wire and memory word of every tracked lane matches the twin
// bit-for-bit after every settle. Untracked lanes receive fault traffic too,
// so cross-lane isolation is exercised, not just mirrored behavior.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "fault/campaign.hpp"
#include "fault/seu.hpp"
#include "hls/flow.hpp"
#include "hw/netlist.hpp"
#include "hw/sim.hpp"
#include "hw/sim_sliced.hpp"
#include "netlist_fuzz.hpp"

namespace hermes::hw {
namespace {

/// Lanes mirrored by scalar twins: golden lane, low lanes, top lanes.
constexpr unsigned kTracked[] = {0, 1, 5, 62, 63};
constexpr std::size_t kTrackedCount = std::size(kTracked);

using fuzz::RandomDesign;

void expect_lanes_match_twins(const SlicedSimulator& sliced,
                              const std::vector<Simulator>& twins,
                              const RandomDesign& design, int trial,
                              int cycle) {
  for (std::size_t t = 0; t < kTrackedCount; ++t) {
    const unsigned lane = kTracked[t];
    for (WireId w = 0; w < design.module.wire_count(); ++w) {
      ASSERT_EQ(sliced.get_lane(w, lane), twins[t].get(w))
          << "trial " << trial << " cycle " << cycle << " lane " << lane
          << " wire " << design.module.wire_name(w) << " (" << w << ")";
    }
    for (std::size_t mem = 0; mem < design.memory_count; ++mem) {
      const std::size_t depth = design.module.memories()[mem].depth;
      for (std::size_t addr = 0; addr < depth; ++addr) {
        ASSERT_EQ(sliced.read_memory_lane(mem, addr, lane),
                  twins[t].read_memory(mem, addr))
            << "trial " << trial << " cycle " << cycle << " lane " << lane
            << " mem[" << addr << "]";
      }
    }
  }
  // lane_divergence must agree with per-lane value extraction.
  for (WireId w = 0; w < design.module.wire_count(); ++w) {
    const std::uint64_t divergence = sliced.lane_divergence(w);
    ASSERT_EQ(divergence & 1, 0u) << "golden lane flagged divergent";
    const std::uint64_t golden = sliced.get_lane(w, 0);
    for (std::size_t t = 0; t < kTrackedCount; ++t) {
      const unsigned lane = kTracked[t];
      ASSERT_EQ((divergence >> lane) & 1,
                static_cast<std::uint64_t>(sliced.get_lane(w, lane) != golden))
          << "trial " << trial << " cycle " << cycle << " lane " << lane
          << " wire " << design.module.wire_name(w);
    }
  }
}

TEST(SimSlicedDifferential, RandomNetlistsMatchScalarTwinsPerLane) {
  constexpr int kDesigns = 25;
  constexpr int kCyclesPerDesign = 20;
  Rng rng(0x51CED);

  for (int trial = 0; trial < kDesigns; ++trial) {
    RandomDesign design = fuzz::make_random_design(rng, trial, "sliced_rand");
    ASSERT_TRUE(design.module.validate().ok()) << "trial " << trial;

    SlicedSimulator sliced(design.module);
    ASSERT_TRUE(sliced.status().ok()) << sliced.status().message();
    std::vector<Simulator> twins;
    twins.reserve(kTrackedCount);
    for (std::size_t t = 0; t < kTrackedCount; ++t) {
      twins.emplace_back(design.module, SimOptions{});
      ASSERT_TRUE(twins.back().status().ok());
    }
    expect_lanes_match_twins(sliced, twins, design, trial, -1);

    const std::vector<WireId> regs = sliced.register_outputs();
    for (int cycle = 0; cycle < kCyclesPerDesign; ++cycle) {
      for (const std::string& port : design.input_ports) {
        if (rng.next_bool(0.5)) {
          const std::uint64_t value = rng.next_u64();
          sliced.set_input(port, value);
          for (Simulator& twin : twins) twin.set_input(port, value);
        }
      }
      if (rng.next_bool(0.3)) {  // mid-cycle settle must agree too
        sliced.eval_comb();
        for (Simulator& twin : twins) twin.eval_comb();
        expect_lanes_match_twins(sliced, twins, design, trial, cycle);
      }
      if (rng.next_bool(0.5)) {
        // Per-lane SEU: a random lane mask (tracked and untracked lanes
        // alike); each tracked twin mirrors the flip iff its lane is hit.
        const WireId target =
            (!regs.empty() && rng.next_bool(0.7))
                ? regs[rng.next_below(regs.size())]
                : static_cast<WireId>(
                      rng.next_below(design.module.wire_count()));
        const unsigned bit = static_cast<unsigned>(
            rng.next_below(design.module.wire_width(target)));
        const std::uint64_t lane_mask = rng.next_u64();
        sliced.corrupt_wire(target, bit, lane_mask);
        for (std::size_t t = 0; t < kTrackedCount; ++t) {
          if ((lane_mask >> kTracked[t]) & 1) {
            twins[t].corrupt_wire(target, bit);
          }
        }
      }
      if (design.memory_count != 0 && rng.next_bool(0.2)) {
        const Memory& mem = design.module.memories()[0];
        const std::size_t addr = rng.next_below(mem.depth);
        const std::uint64_t value = rng.next_u64();
        sliced.write_memory(0, addr, value);
        for (Simulator& twin : twins) twin.write_memory(0, addr, value);
      }
      sliced.step();
      for (Simulator& twin : twins) twin.step();
      ASSERT_EQ(sliced.cycles(), twins[0].cycles());
      expect_lanes_match_twins(sliced, twins, design, trial, cycle);
    }
  }
}

TEST(SimSlicedDifferential, HlsAcceleratorFaultyLanesMatchScalar) {
  hls::FlowOptions options;
  options.top = "dot";
  auto flow = hls::run_flow(R"(
    int dot(int a[16], int b[16]) {
      int acc = 0;
      for (int i = 0; i < 16; i = i + 1) { acc = acc + a[i] * b[i]; }
      return acc;
    }
  )", options);
  ASSERT_TRUE(flow.ok());
  const Module& module = flow.value().fsmd.module;

  SlicedSimulator sliced(module);
  ASSERT_TRUE(sliced.status().ok());
  std::vector<Simulator> twins;
  for (std::size_t t = 0; t < kTrackedCount; ++t) {
    twins.emplace_back(module, SimOptions{});
    ASSERT_TRUE(twins.back().status().ok());
  }
  for (std::size_t i = 0; i < 16; ++i) {
    sliced.write_memory(0, i, i + 1);
    sliced.write_memory(1, i, 2 * i + 1);
    for (Simulator& twin : twins) {
      twin.write_memory(0, i, i + 1);
      twin.write_memory(1, i, 2 * i + 1);
    }
  }
  sliced.set_input("start", 1);
  for (Simulator& twin : twins) twin.set_input("start", 1);

  // Warm up, hit distinct registers on distinct lanes, then run to
  // completion; every tracked lane must match its scalar twin exactly,
  // including the faulty ones.
  const std::vector<WireId> regs = sliced.register_outputs();
  ASSERT_GE(regs.size(), 3u);
  Rng rng(0xD07);
  for (int cycle = 0; cycle < 8; ++cycle) {
    sliced.step();
    for (Simulator& twin : twins) twin.step();
  }
  for (std::size_t t = 1; t < kTrackedCount; ++t) {  // lane 0 stays golden
    const WireId target = regs[rng.next_below(regs.size())];
    const unsigned bit =
        static_cast<unsigned>(rng.next_below(module.wire_width(target)));
    sliced.corrupt_wire(target, bit, 1ULL << kTracked[t]);
    twins[t].corrupt_wire(target, bit);
  }
  for (int cycle = 0; cycle < 300; ++cycle) {
    sliced.step();
    for (Simulator& twin : twins) twin.step();
  }
  ASSERT_EQ(sliced.get_output_lane("done", 0), 1u);
  for (std::size_t t = 0; t < kTrackedCount; ++t) {
    const unsigned lane = kTracked[t];
    EXPECT_EQ(sliced.get_output_lane("done", lane), twins[t].get_output("done"))
        << "lane " << lane;
    EXPECT_EQ(sliced.get_output_lane("return_value", lane),
              twins[t].get_output("return_value"))
        << "lane " << lane;
  }
  EXPECT_NE(sliced.get_output_lane("return_value", 0), 0u);
}

}  // namespace
}  // namespace hermes::hw

namespace hermes::fault {
namespace {

hw::Module make_counter_module() {
  hw::Module m("sliced_campaign_counter");
  const hw::WireId one = m.make_const(1, 1);
  const hw::WireId d = m.add_wire(8, "d");
  const hw::WireId q = m.make_register(d, one, 0, "q");
  const hw::WireId inc = m.make_const(1, 8);
  hw::Cell add;
  add.kind = hw::CellKind::kAdd;
  add.inputs = {q, inc};
  add.outputs = {d};
  m.add_cell(std::move(add));
  m.add_output(q, "q");
  return m;
}

void expect_same_result(const NetlistSeuResult& serial,
                        const NetlistSeuResult& sliced) {
  ASSERT_EQ(serial.per_replica.size(), sliced.per_replica.size());
  for (std::size_t i = 0; i < serial.per_replica.size(); ++i) {
    EXPECT_EQ(serial.per_replica[i].target, sliced.per_replica[i].target)
        << "replica " << i;
    EXPECT_EQ(serial.per_replica[i].bit, sliced.per_replica[i].bit)
        << "replica " << i;
    EXPECT_EQ(serial.per_replica[i].diverged, sliced.per_replica[i].diverged)
        << "replica " << i;
    EXPECT_EQ(serial.per_replica[i].first_divergence_cycle,
              sliced.per_replica[i].first_divergence_cycle)
        << "replica " << i;
  }
  EXPECT_EQ(serial.diverged, sliced.diverged);
  EXPECT_EQ(fingerprint(serial), fingerprint(sliced));
}

TEST(CampaignSliced, ReplicaBatchMathRoundTrips) {
  // The 63-replica grouping must preserve the per-replica seed sequence:
  // replica r always lands in batch r/63, lane 1 + r%63, and the (batch,
  // lane) pair maps back to r — so the sliced runner seeds Rng(replica_seed(
  // base, r)) for exactly the same r values the serial runner does.
  static_assert(kSliceLanes == 64);
  static_assert(kReplicasPerBatch == 63);
  for (std::size_t r = 0; r < 500; ++r) {
    const std::size_t batch = batch_of(r);
    const unsigned lane = lane_of(r);
    EXPECT_GE(lane, 1u);     // lane 0 is reserved for the golden replica
    EXPECT_LE(lane, 63u);
    EXPECT_EQ(replica_at(batch, lane), r);
    EXPECT_LT(batch, batch_count(r + 1));
  }
  EXPECT_EQ(batch_count(0), 0u);
  EXPECT_EQ(batch_count(1), 1u);
  EXPECT_EQ(batch_count(63), 1u);
  EXPECT_EQ(batch_count(64), 2u);
  EXPECT_EQ(batch_count(126), 2u);
  EXPECT_EQ(batch_count(127), 3u);
}

TEST(CampaignSliced, CounterCampaignBitIdenticalToSerial) {
  const hw::Module module = make_counter_module();
  NetlistSeuPlan plan;
  plan.replicas = 150;  // spans three 63-replica batches, last one partial
  plan.cycles_before = 3;
  plan.cycles_after = 8;
  plan.base_seed = 77;

  ThreadPool serial_pool(0);
  ThreadPool threaded(4);
  const NetlistSeuResult serial =
      run_netlist_seu_campaign(module, plan, &serial_pool);
  const NetlistSeuResult sliced_serial =
      run_netlist_seu_campaign_sliced(module, plan, &serial_pool);
  const NetlistSeuResult sliced_threaded =
      run_netlist_seu_campaign_sliced(module, plan, &threaded);
  expect_same_result(serial, sliced_serial);
  expect_same_result(serial, sliced_threaded);
  // Flipping any bit of the sole counter register always diverges.
  EXPECT_EQ(serial.diverged, plan.replicas);
}

TEST(CampaignSliced, HlsAcceleratorCampaignBitIdenticalToSerial) {
  hls::FlowOptions options;
  options.top = "dot";
  auto flow = hls::run_flow(R"(
    int dot(int a[16], int b[16]) {
      int acc = 0;
      for (int i = 0; i < 16; i = i + 1) { acc = acc + a[i] * b[i]; }
      return acc;
    }
  )", options);
  ASSERT_TRUE(flow.ok());
  const hw::Module& module = flow.value().fsmd.module;

  NetlistSeuPlan plan;
  plan.replicas = 80;  // crosses the first batch boundary
  plan.cycles_before = 8;
  plan.cycles_after = 48;
  plan.base_seed = 5;
  plan.inputs = {{"start", 1}};

  ThreadPool serial_pool(0);
  const NetlistSeuResult serial =
      run_netlist_seu_campaign(module, plan, &serial_pool);
  const NetlistSeuResult sliced =
      run_netlist_seu_campaign_sliced(module, plan, &serial_pool);
  expect_same_result(serial, sliced);
  // A real accelerator must show both masked and propagated upsets for the
  // parity check to mean anything.
  EXPECT_GT(serial.diverged, 0u);
  EXPECT_LT(serial.diverged, plan.replicas);
}

}  // namespace
}  // namespace hermes::fault
