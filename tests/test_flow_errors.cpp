// Error-path tests: the toolchain must fail loudly and precisely, never
// crash or emit broken artifacts, when given bad input — the robustness side
// of the "functionality and usability" evaluation (paper Sec. V).
#include <gtest/gtest.h>

#include "hls/flow.hpp"
#include "hv/hypervisor.hpp"

namespace hermes {
namespace {

hls::FlowOptions top(const char* name) {
  hls::FlowOptions options;
  options.top = name;
  return options;
}

TEST(FlowErrors, MissingTopFunction) {
  auto flow = hls::run_flow("int f() { return 1; }", top("nonexistent"));
  ASSERT_FALSE(flow.ok());
  EXPECT_EQ(flow.status().code(), ErrorCode::kNotFound);
  EXPECT_NE(flow.status().message().find("nonexistent"), std::string::npos);
}

TEST(FlowErrors, ParseErrorsCarryLineNumbers) {
  auto flow = hls::run_flow("int f() {\n  return 1 +\n}", top("f"));
  ASSERT_FALSE(flow.ok());
  EXPECT_EQ(flow.status().code(), ErrorCode::kParseError);
  EXPECT_NE(flow.status().message().find("line 3"), std::string::npos);
}

TEST(FlowErrors, TypeErrorsPropagate) {
  auto flow = hls::run_flow("int f() { return ghost; }", top("f"));
  ASSERT_FALSE(flow.ok());
  EXPECT_EQ(flow.status().code(), ErrorCode::kTypeError);
}

TEST(FlowErrors, RecursionRejectedBeforeBackend) {
  auto flow = hls::run_flow("int f(int n) { return n < 1 ? 0 : f(n - 1); }",
                            top("f"));
  ASSERT_FALSE(flow.ok());
  EXPECT_EQ(flow.status().code(), ErrorCode::kTypeError);
  EXPECT_NE(flow.status().message().find("recursi"), std::string::npos);
}

TEST(FlowErrors, FloatTypesRejected) {
  auto flow = hls::run_flow("float f(float a) { return a; }", top("f"));
  ASSERT_FALSE(flow.ok());  // float is not a known type name
}

TEST(FlowErrors, PointersRejected) {
  auto flow = hls::run_flow("int f(int *p) { return 1; }", top("f"));
  ASSERT_FALSE(flow.ok());
}

TEST(FlowErrors, EmptySourceRejected) {
  auto flow = hls::run_flow("", top("f"));
  ASSERT_FALSE(flow.ok());
}

TEST(FlowErrors, SuccessfulFlowHasWellFormedVerilog) {
  auto flow = hls::run_flow(
      "int f(int a[4]) { return a[0] + a[1] + a[2] + a[3]; }", top("f"));
  ASSERT_TRUE(flow.ok()) << flow.status().to_string();
  const std::string& verilog = flow.value().verilog;
  // Structural sanity: exactly one module/endmodule pair, no placeholder
  // glyphs from unhandled cell kinds.
  std::size_t modules = 0, pos = 0;
  while ((pos = verilog.find("\nmodule ", pos)) != std::string::npos) {
    ++modules;
    ++pos;
  }
  EXPECT_EQ(modules, 1u);
  std::size_t endmodules = 0;
  pos = 0;
  while ((pos = verilog.find("endmodule", pos)) != std::string::npos) {
    ++endmodules;
    ++pos;
  }
  EXPECT_EQ(endmodules, 1u);
  EXPECT_EQ(verilog.find(" ? ;"), std::string::npos);
  EXPECT_EQ(verilog.find("= ?"), std::string::npos);
}

TEST(HvErrors, RunRefusesInvalidConfiguration) {
  hv::HvConfig config;
  config.plan.major_frame = 0;  // invalid
  hv::Hypervisor hv(config);
  auto stats = hv.run(1000);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), ErrorCode::kInvalidArgument);
}

TEST(HvErrors, PortErrorsSurfaceToCallers) {
  hv::HvConfig config;
  config.plan.major_frame = 1000;
  config.plan.per_core.assign(hv::kNumCores, {});
  config.plan.per_core[0] = {{0, 500, 0, 0}};
  hv::PartitionConfig p;
  p.name = "p";
  p.region = {0, 0x100};
  p.profile = {1000, 0, 100};
  Status seen;
  p.on_job = [&seen](hv::PartitionApi& api) {
    seen = api.write_port("does_not_exist", {1});
  };
  config.partitions = {p};
  hv::Hypervisor hv(config);
  ASSERT_TRUE(hv.run(1000).ok());
  EXPECT_FALSE(seen.ok());
  EXPECT_EQ(seen.code(), ErrorCode::kNotFound);
}

}  // namespace
}  // namespace hermes
