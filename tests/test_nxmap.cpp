// Tests for the NXmap backend: device model, tech mapping, placement,
// routing, STA, bitstream and power — ending with the paper's 2x-speed /
// 4x-power claim measured end-to-end.
#include <gtest/gtest.h>

#include "hls/flow.hpp"
#include "nxmap/flow.hpp"
#include "common/rng.hpp"

namespace hermes::nx {
namespace {

hw::Module small_design() {
  hw::Module m("dp");
  const hw::WireId a = m.add_wire(32, "a");
  const hw::WireId b = m.add_wire(32, "b");
  m.add_input(a, "a");
  m.add_input(b, "b");
  const hw::WireId sum = m.make_binop(hw::CellKind::kAdd, a, b, 32, "sum");
  const hw::WireId prod = m.make_binop(hw::CellKind::kMul, a, b, 32, "prod");
  const hw::WireId mix = m.make_binop(hw::CellKind::kXor, sum, prod, 32, "mix");
  const hw::WireId en = m.make_const(1, 1);
  const hw::WireId q = m.make_register(mix, en, 0, "q");
  m.add_output(q, "q");
  return m;
}

TEST(Device, NgUltraInventory) {
  const NxDevice device = make_device(hls::ng_ultra());
  EXPECT_GE(device.total_luts(), 550'000u);  // paper: 550k LUTs
  EXPECT_GT(device.rows, 0u);
  const std::string inventory = device_inventory(device);
  EXPECT_NE(inventory.find("NG-ULTRA"), std::string::npos);
  EXPECT_NE(inventory.find("DSP"), std::string::npos);
}

TEST(Techmap, MapsCellsAndCountsResources) {
  const NxDevice device = make_device(hls::ng_ultra());
  auto mapped = techmap(small_design(), device);
  ASSERT_TRUE(mapped.ok()) << mapped.status().to_string();
  const Utilization& util = mapped.value().utilization;
  EXPECT_GT(util.luts, 0u);
  EXPECT_GT(util.dsps, 0u);  // 32-bit multiplier needs composed DSPs
  EXPECT_GT(util.ffs, 0u);
  EXPECT_GT(util.lut_pct, 0.0);
  EXPECT_LT(util.lut_pct, 1.0);  // tiny design on a 550k device
}

TEST(Techmap, MemoriesBecomeBrams) {
  hw::Module m("memy");
  hw::Memory mem;
  mem.name = "big";
  mem.width = 32;
  mem.depth = 4096;  // 128 kbit -> 3 blocks of 48 kbit
  m.add_memory(mem);
  const NxDevice device = make_device(hls::ng_ultra());
  auto mapped = techmap(m, device);
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(mapped.value().utilization.brams, 3u);
}

TEST(Techmap, RejectsOversizedDesign) {
  // A fabricated device with almost no LUTs.
  hls::FpgaTarget tiny = hls::ng_ultra();
  tiny.luts = 16;
  const NxDevice device = make_device(tiny);
  auto mapped = techmap(small_design(), device);
  EXPECT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), ErrorCode::kResourceExhausted);
}

TEST(Place, LegalAndDeterministic) {
  const NxDevice device = make_device(hls::ng_ultra());
  const hw::Module m = small_design();
  auto mapped = techmap(m, device);
  ASSERT_TRUE(mapped.ok());
  const Placement p1 = place(m, mapped.value(), device);
  const Placement p2 = place(m, mapped.value(), device);
  EXPECT_EQ(p1.location, p2.location) << "placement must be deterministic";
  EXPECT_GT(p1.grid_side, 0u);
  for (const auto& [x, y] : p1.location) {
    EXPECT_LT(x, p1.grid_side);
    EXPECT_LT(y, p1.grid_side);
  }
}

TEST(Place, AnnealingImprovesOnRandom) {
  const NxDevice device = make_device(hls::ng_ultra());
  const hw::Module m = small_design();
  auto mapped = techmap(m, device);
  ASSERT_TRUE(mapped.ok());
  PlaceOptions no_anneal;
  no_anneal.iterations_per_instance = 0;  // random initial placement only
  const Placement random = place(m, mapped.value(), device, no_anneal);
  const Placement annealed = place(m, mapped.value(), device);
  EXPECT_LE(annealed.hpwl, random.hpwl);
}

TEST(Route, DelaysAndWirelengthPopulated) {
  const NxDevice device = make_device(hls::ng_ultra());
  const hw::Module m = small_design();
  auto mapped = techmap(m, device);
  ASSERT_TRUE(mapped.ok());
  const Placement placement = place(m, mapped.value(), device);
  const Routing routing = route(m, mapped.value(), placement, device);
  EXPECT_EQ(routing.wire_delay_ns.size(), m.wire_count());
  bool any_delay = false;
  for (double d : routing.wire_delay_ns) {
    EXPECT_GE(d, 0.0);
    if (d > 0) any_delay = true;
  }
  EXPECT_TRUE(any_delay);
}

TEST(Sta, ReportsCriticalPathAndChecksTarget) {
  const NxDevice device = make_device(hls::ng_ultra());
  const hw::Module m = small_design();
  auto mapped = techmap(m, device);
  ASSERT_TRUE(mapped.ok());
  const Placement placement = place(m, mapped.value(), device);
  const Routing routing = route(m, mapped.value(), placement, device);

  auto relaxed = analyze_timing(m, mapped.value(), routing, device, 100.0);
  ASSERT_TRUE(relaxed.ok());
  EXPECT_GT(relaxed.value().critical_path_ns, 0.0);
  EXPECT_TRUE(relaxed.value().meets_target);
  EXPECT_FALSE(relaxed.value().critical_path.empty());

  auto impossible = analyze_timing(m, mapped.value(), routing, device, 0.01);
  ASSERT_TRUE(impossible.ok());
  EXPECT_FALSE(impossible.value().meets_target);
  EXPECT_LT(impossible.value().slack_ns, 0.0);
}

TEST(Bitstream, PacksAndVerifies) {
  const NxDevice device = make_device(hls::ng_ultra());
  const hw::Module m = small_design();
  auto mapped = techmap(m, device);
  ASSERT_TRUE(mapped.ok());
  const Placement placement = place(m, mapped.value(), device);
  const auto image = pack_bitstream(m, mapped.value(), placement, device);
  EXPECT_GT(image.size(), 32u);
  auto info = verify_bitstream(image);
  ASSERT_TRUE(info.ok()) << info.status().to_string();
  EXPECT_GT(info.value().frames, 0u);
}

TEST(Bitstream, DetectsEveryInjectedCorruption) {
  const NxDevice device = make_device(hls::ng_ultra());
  const hw::Module m = small_design();
  auto mapped = techmap(m, device);
  ASSERT_TRUE(mapped.ok());
  const Placement placement = place(m, mapped.value(), device);
  const auto image = pack_bitstream(m, mapped.value(), placement, device);

  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    auto corrupted = image;
    corrupted[rng.next_below(corrupted.size())] ^=
        static_cast<std::uint8_t>(1u << rng.next_below(8));
    EXPECT_FALSE(verify_bitstream(corrupted).ok()) << "trial " << trial;
  }
  // Truncation is also detected.
  auto truncated = image;
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(verify_bitstream(truncated).ok());
}

TEST(Power, ScalesWithFrequency) {
  const NxDevice device = make_device(hls::ng_ultra());
  auto mapped = techmap(small_design(), device);
  ASSERT_TRUE(mapped.ok());
  const PowerReport slow = estimate_power(mapped.value(), device, 50.0);
  const PowerReport fast = estimate_power(mapped.value(), device, 200.0);
  EXPECT_GT(fast.dynamic_mw, slow.dynamic_mw);
  EXPECT_DOUBLE_EQ(fast.static_mw, slow.static_mw);
}

TEST(Backend, FullFlowOnHlsOutput) {
  const char* source = R"(
    int mac(int a[16], int b[16]) {
      int acc = 0;
      for (int i = 0; i < 16; i = i + 1) { acc = acc + a[i] * b[i]; }
      return acc;
    }
  )";
  hls::FlowOptions options;
  options.top = "mac";
  auto flow = hls::run_flow(source, options);
  ASSERT_TRUE(flow.ok()) << flow.status().to_string();

  const NxDevice device = make_device(hls::ng_ultra());
  BackendOptions backend_options;
  backend_options.target_period_ns = options.constraints.clock_period_ns;
  auto backend = run_backend(flow.value().fsmd.module, device, backend_options);
  ASSERT_TRUE(backend.ok()) << backend.status().to_string();
  EXPECT_GT(backend.value().mapped.utilization.luts, 0u);
  EXPECT_GT(backend.value().timing.fmax_mhz, 0.0);
  EXPECT_FALSE(backend.value().bitstream.empty());
  const std::string report = backend_report(backend.value(), device);
  EXPECT_NE(report.find("utilization"), std::string::npos);
  EXPECT_NE(report.find("Fmax"), std::string::npos);
}

TEST(ClaimSpeedPower, NgUltraVsLegacyRadHard) {
  // The paper's headline: "550k LUTs running twice as fast as current
  // rad-hard FPGAs with a power consumption four times smaller". Run the
  // same design through both device models and measure the ratios.
  const hw::Module m = small_design();
  const NxDevice ng = make_device(hls::ng_ultra());
  const NxDevice legacy = make_device(hls::legacy_radhard());

  auto ng_backend = run_backend(m, ng);
  auto legacy_backend = run_backend(m, legacy);
  ASSERT_TRUE(ng_backend.ok());
  ASSERT_TRUE(legacy_backend.ok());

  const double speed_ratio =
      ng_backend.value().timing.fmax_mhz / legacy_backend.value().timing.fmax_mhz;
  EXPECT_GT(speed_ratio, 1.6);
  EXPECT_LT(speed_ratio, 2.5);

  // Compare dynamic power at the same operating frequency.
  const double f = legacy_backend.value().timing.fmax_mhz;
  const PowerReport ng_power = estimate_power(ng_backend.value().mapped, ng, f);
  const PowerReport legacy_power =
      estimate_power(legacy_backend.value().mapped, legacy, f);
  const double power_ratio = legacy_power.dynamic_mw / ng_power.dynamic_mw;
  EXPECT_GT(power_ratio, 3.5);
  EXPECT_LT(power_ratio, 4.5);
}

}  // namespace
}  // namespace hermes::nx

// Detailed (PathFinder) router tests appended as a separate suite.
namespace hermes::nx {
namespace {

TEST(DetailedRoute, ConvergesOnKernelNetlist) {
  hls::FlowOptions options;
  options.top = "mac";
  auto flow = hls::run_flow(R"(
    int mac(int a[16], int b[16]) {
      int acc = 0;
      for (int i = 0; i < 16; i = i + 1) { acc = acc + a[i] * b[i]; }
      return acc;
    }
  )", options);
  ASSERT_TRUE(flow.ok());
  const NxDevice device = make_device(hls::ng_ultra());
  const hw::Module& m = flow.value().fsmd.module;
  auto mapped = techmap(m, device);
  ASSERT_TRUE(mapped.ok());
  const Placement placement = place(m, mapped.value(), device);

  const DetailedRouteResult routed =
      detailed_route(m, mapped.value(), placement, device);
  EXPECT_TRUE(routed.converged) << routed.overused_tiles << " overused tiles";
  EXPECT_EQ(routed.overused_tiles, 0u);
  EXPECT_GT(routed.total_tree_nodes, 0u);
  EXPECT_GE(routed.iterations, 1u);

  // Routed wirelength can never beat the half-perimeter lower bound.
  const Routing estimate = route(m, mapped.value(), placement, device);
  EXPECT_GE(routed.routing.total_wirelength, placement.hpwl * 0.99);
  // Every wire the estimator priced is also embedded.
  for (hw::WireId w = 0; w < m.wire_count(); ++w) {
    if (estimate.wire_delay_ns[w] > 0) {
      EXPECT_GT(routed.routing.wire_delay_ns[w], 0.0) << "wire " << w;
    }
  }
}

TEST(DetailedRoute, NegotiationResolvesArtificialScarcity) {
  // Squeeze the channel capacity until the first iteration overflows; the
  // negotiation must still spread nets and converge (or at least shrink the
  // overuse monotonically to a small residue).
  hls::FlowOptions options;
  options.top = "f";
  auto flow = hls::run_flow(
      "int f(int a, int b, int c) { return a * b + b * c + a * c; }", options);
  ASSERT_TRUE(flow.ok());
  const NxDevice device = make_device(hls::ng_ultra());
  const hw::Module& m = flow.value().fsmd.module;
  auto mapped = techmap(m, device);
  ASSERT_TRUE(mapped.ok());
  const Placement placement = place(m, mapped.value(), device);

  DetailedRouteOptions tight;
  tight.channel_capacity = 40.0;
  tight.max_iterations = 32;
  const DetailedRouteResult routed =
      detailed_route(m, mapped.value(), placement, device, tight);
  EXPECT_GT(routed.iterations, 1u) << "scarcity must trigger negotiation";
  EXPECT_LE(routed.routing.max_congestion, 2.0)
      << "negotiation must spread the hotspots (first-iteration hotspots on "
         "this design exceed 4x capacity)";
}

TEST(DetailedRoute, BackendIntegration) {
  hw::Module m("dp2");
  const hw::WireId a = m.add_wire(32, "a");
  const hw::WireId b = m.add_wire(32, "b");
  m.add_input(a, "a");
  m.add_input(b, "b");
  const hw::WireId s = m.make_binop(hw::CellKind::kAdd, a, b, 32, "s");
  const hw::WireId p = m.make_binop(hw::CellKind::kMul, a, s, 32, "p");
  const hw::WireId en = m.make_const(1, 1);
  m.add_output(m.make_register(p, en, 0, "q"), "q");

  const NxDevice device = make_device(hls::ng_ultra());
  BackendOptions options;
  options.detailed_router = true;
  auto backend = run_backend(m, device, options);
  ASSERT_TRUE(backend.ok());
  EXPECT_TRUE(backend.value().route_converged);
  EXPECT_GE(backend.value().route_iterations, 1u);
  EXPECT_GT(backend.value().timing.fmax_mhz, 0.0);
}

}  // namespace
}  // namespace hermes::nx
