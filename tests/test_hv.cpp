// Tests for the XtratuM-NG hypervisor model: plan validation, time
// partitioning, space isolation, health monitoring, ports.
#include <gtest/gtest.h>

#include "hv/hypervisor.hpp"

namespace hermes::hv {
namespace {

/// A 1 ms major frame with one slot for each of two partitions on core 0.
HvConfig two_partition_config() {
  HvConfig config;
  config.plan.major_frame = 1000;
  config.plan.per_core.assign(kNumCores, {});
  config.plan.per_core[0] = {
      {0, 400, 0, 0},
      {500, 400, 1, 0},
  };
  PartitionConfig p0;
  p0.name = "p0";
  p0.region = {0x0000, 0x1000};
  p0.profile = {1000, 0, 200};  // 200 us job per 1 ms
  PartitionConfig p1;
  p1.name = "p1";
  p1.region = {0x1000, 0x1000};
  p1.profile = {1000, 0, 300};
  config.partitions = {p0, p1};
  return config;
}

TEST(Plan, RejectsOverlappingSlots) {
  HvConfig config = two_partition_config();
  config.plan.per_core[0][1].start = 200;  // overlaps the first slot
  Hypervisor hv(config);
  EXPECT_FALSE(hv.validate().ok());
}

TEST(Plan, RejectsSlotBeyondMajorFrame) {
  HvConfig config = two_partition_config();
  config.plan.per_core[0][1].duration = 900;
  Hypervisor hv(config);
  EXPECT_FALSE(hv.validate().ok());
}

TEST(Plan, RejectsOverlappingMpuRegions) {
  HvConfig config = two_partition_config();
  config.partitions[1].region = {0x0800, 0x1000};
  Hypervisor hv(config);
  const Status status = hv.validate();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kIsolationFault);
}

TEST(Plan, RejectsBadPartitionId) {
  HvConfig config = two_partition_config();
  config.plan.per_core[0][0].partition = 9;
  Hypervisor hv(config);
  EXPECT_FALSE(hv.validate().ok());
}

TEST(Scheduling, JobsCompleteWithinBudget) {
  Hypervisor hv(two_partition_config());
  auto stats = hv.run(10'000);  // 10 major frames
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  const auto& p = stats.value().partitions;
  EXPECT_EQ(p[0].jobs_released, 10u);
  EXPECT_EQ(p[0].jobs_completed, 10u);
  EXPECT_EQ(p[0].deadline_misses, 0u);
  EXPECT_EQ(p[1].jobs_completed, 10u);
  EXPECT_EQ(stats.value().major_frames, 10u);
}

TEST(Scheduling, CpuTimeMatchesDemand) {
  Hypervisor hv(two_partition_config());
  auto stats = hv.run(10'000);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().partitions[0].cpu_time, 10u * 200u);
  EXPECT_EQ(stats.value().partitions[1].cpu_time, 10u * 300u);
}

TEST(Scheduling, OverloadedPartitionMissesDeadlines) {
  HvConfig config = two_partition_config();
  config.partitions[0].profile.wcet = 600;  // needs 600 us, slot gives ~380
  Hypervisor hv(config);
  auto stats = hv.run(10'000);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats.value().partitions[0].deadline_misses, 0u);
  // Time partitioning: the overload must not disturb partition 1.
  EXPECT_EQ(stats.value().partitions[1].deadline_misses, 0u);
  EXPECT_EQ(stats.value().partitions[1].jobs_completed, 10u);
}

TEST(Scheduling, ContextSwitchesCounted) {
  Hypervisor hv(two_partition_config());
  auto stats = hv.run(5'000);
  ASSERT_TRUE(stats.ok());
  // Two switches per frame (p0 -> p1 -> p0 across frames).
  EXPECT_GE(stats.value().context_switches, 9u);
  EXPECT_LE(stats.value().context_switches, 10u);
}

TEST(Scheduling, JitterBoundedBySlotOffset) {
  Hypervisor hv(two_partition_config());
  auto stats = hv.run(10'000);
  ASSERT_TRUE(stats.ok());
  // p1's job releases at frame start but its slot begins at 500 us (plus
  // the context switch): jitter must reflect that, bounded by the offset.
  EXPECT_GE(stats.value().partitions[1].max_jitter, 500u);
  EXPECT_LE(stats.value().partitions[1].max_jitter, 540u);
}

TEST(Scheduling, MultiCoreParallelism) {
  HvConfig config;
  config.plan.major_frame = 1000;
  config.plan.per_core.assign(kNumCores, {});
  // Same partition budget on 4 cores simultaneously (paper: XtratuM gives
  // "support to the four cores provided by the board, thus enabling
  // parallel computing").
  for (unsigned core = 0; core < kNumCores; ++core) {
    config.plan.per_core[core] = {{0, 900, static_cast<PartitionId>(core % 2), 0}};
  }
  PartitionConfig p0;
  p0.name = "heavy0";
  p0.region = {0, 0x1000};
  p0.profile = {1000, 0, 1500};  // needs more than one core-slot
  PartitionConfig p1 = p0;
  p1.name = "heavy1";
  p1.region = {0x1000, 0x1000};
  config.partitions = {p0, p1};
  Hypervisor hv(config);
  auto stats = hv.run(10'000);
  ASSERT_TRUE(stats.ok());
  // Each partition has 2 cores x 880+ us per frame > 1500 us demand.
  EXPECT_EQ(stats.value().partitions[0].deadline_misses, 0u);
  EXPECT_EQ(stats.value().partitions[1].deadline_misses, 0u);
  EXPECT_GT(stats.value().core_utilization[0], 0.5);
}

TEST(Isolation, MemoryViolationSuspendsPartition) {
  HvConfig config = two_partition_config();
  config.partitions[0].on_job = [](PartitionApi& api) {
    // Deliberately touch partition 1's memory.
    std::uint8_t byte = 0;
    const Status status = api.read_mem(0x1800, &byte, 1);
    EXPECT_FALSE(status.ok());
  };
  Hypervisor hv(config);
  auto stats = hv.run(5'000);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().partitions[0].final_state, PartitionState::kSuspended);
  ASSERT_FALSE(stats.value().hm_log.empty());
  EXPECT_EQ(stats.value().hm_log[0].event, HmEvent::kMemoryViolation);
  EXPECT_EQ(stats.value().hm_log[0].partition, 0u);
  // The victim partition is unaffected.
  EXPECT_EQ(stats.value().partitions[1].final_state, PartitionState::kNormal);
  EXPECT_EQ(stats.value().partitions[1].deadline_misses, 0u);
}

TEST(Isolation, InRegionAccessSucceeds) {
  HvConfig config = two_partition_config();
  bool wrote = false;
  config.partitions[0].on_job = [&wrote](PartitionApi& api) {
    const std::uint32_t value = 0xABCD;
    EXPECT_TRUE(api.write_mem(0x100, &value, 4).ok());
    std::uint32_t readback = 0;
    EXPECT_TRUE(api.read_mem(0x100, &readback, 4).ok());
    EXPECT_EQ(readback, 0xABCDu);
    wrote = true;
  };
  Hypervisor hv(config);
  ASSERT_TRUE(hv.run(2'000).ok());
  EXPECT_TRUE(wrote);
}

TEST(HealthMonitor, PartitionErrorRestarts) {
  HvConfig config = two_partition_config();
  int raises = 0;
  config.partitions[0].on_job = [&raises](PartitionApi& api) {
    if (raises++ == 0) api.raise_error();
  };
  Hypervisor hv(config);
  auto stats = hv.run(5'000);
  ASSERT_TRUE(stats.ok());
  // Restart action: partition keeps running after the error.
  EXPECT_EQ(stats.value().partitions[0].final_state, PartitionState::kNormal);
  EXPECT_GE(stats.value().partitions[0].jobs_completed, 2u);
  ASSERT_FALSE(stats.value().hm_log.empty());
  EXPECT_EQ(stats.value().hm_log[0].action, HmAction::kRestartPartition);
}

TEST(HealthMonitor, ConfigurableAction) {
  HvConfig config = two_partition_config();
  config.hm_table[HmEvent::kPartitionError] = HmAction::kHaltPartition;
  config.partitions[0].on_job = [](PartitionApi& api) { api.raise_error(); };
  Hypervisor hv(config);
  auto stats = hv.run(5'000);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().partitions[0].final_state, PartitionState::kHalted);
}

TEST(Hypercalls, NonSystemPartitionCannotManageOthers) {
  HvConfig config = two_partition_config();
  config.partitions[0].on_job = [](PartitionApi& api) {
    EXPECT_FALSE(api.suspend_partition(1).ok());
  };
  Hypervisor hv(config);
  auto stats = hv.run(2'000);
  ASSERT_TRUE(stats.ok());
  bool illegal_logged = false;
  for (const HmLogEntry& entry : stats.value().hm_log) {
    if (entry.event == HmEvent::kIllegalHypercall) illegal_logged = true;
  }
  EXPECT_TRUE(illegal_logged);
  EXPECT_EQ(stats.value().partitions[1].final_state, PartitionState::kNormal);
}

TEST(Hypercalls, SystemPartitionManagesOthers) {
  HvConfig config = two_partition_config();
  config.partitions[0].system = true;
  config.partitions[0].on_job = [](PartitionApi& api) {
    EXPECT_TRUE(api.suspend_partition(1).ok());
  };
  Hypervisor hv(config);
  auto stats = hv.run(3'000);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().partitions[1].final_state, PartitionState::kSuspended);
}

TEST(Ports, SamplingDeliveryAndValidity) {
  HvConfig config = two_partition_config();
  config.ports = {
      {"att_out", PortKind::kSampling, PortDir::kSource, 0, 64, 8, 0},
      {"att_in", PortKind::kSampling, PortDir::kDestination, 1, 64, 8, 1200},
  };
  config.channels = {{"att_out", {"att_in"}}};
  int valid_reads = 0;
  config.partitions[0].on_job = [](PartitionApi& api) {
    const Message message = {1, 2, 3};
    EXPECT_TRUE(api.write_port("att_out", message).ok());
  };
  config.partitions[1].on_job = [&valid_reads](PartitionApi& api) {
    auto sample = api.read_sample("att_in");
    ASSERT_TRUE(sample.ok());
    if (sample.value().valid) {
      EXPECT_EQ(sample.value().message, (Message{1, 2, 3}));
      ++valid_reads;
    }
  };
  Hypervisor hv(config);
  auto stats = hv.run(10'000);
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(valid_reads, 9);
  EXPECT_GE(stats.value().port_messages, 10u);
}

TEST(Ports, QueuingOverflowDropsOldest) {
  PortSwitch ports;
  ASSERT_TRUE(ports.add_port({"q_src", PortKind::kQueuing, PortDir::kSource,
                              0, 16, 4, 0}).ok());
  ASSERT_TRUE(ports.add_port({"q_dst", PortKind::kQueuing, PortDir::kDestination,
                              1, 16, 2, 0}).ok());
  ASSERT_TRUE(ports.add_channel({"q_src", {"q_dst"}}).ok());
  for (std::uint8_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(ports.write(0, "q_src", {i}, i).ok());
  }
  // Depth 2, drop-oldest: only messages 3 and 4 remain.
  auto m1 = ports.read_queue(1, "q_dst");
  auto m2 = ports.read_queue(1, "q_dst");
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(m1.value()[0], 3u);
  EXPECT_EQ(m2.value()[0], 4u);
  EXPECT_FALSE(ports.read_queue(1, "q_dst").ok());
  EXPECT_EQ(ports.find("q_dst")->overflows, 3u);
}

TEST(Ports, OwnershipEnforced) {
  PortSwitch ports;
  ASSERT_TRUE(ports.add_port({"s", PortKind::kSampling, PortDir::kSource,
                              0, 16, 4, 0}).ok());
  const Status foreign = ports.write(1, "s", {1}, 0);
  EXPECT_FALSE(foreign.ok());
  EXPECT_EQ(foreign.code(), ErrorCode::kIsolationFault);
}

TEST(Ports, ChannelKindMismatchRejected) {
  PortSwitch ports;
  ASSERT_TRUE(ports.add_port({"s", PortKind::kSampling, PortDir::kSource,
                              0, 16, 4, 0}).ok());
  ASSERT_TRUE(ports.add_port({"q", PortKind::kQueuing, PortDir::kDestination,
                              1, 16, 4, 0}).ok());
  EXPECT_FALSE(ports.add_channel({"s", {"q"}}).ok());
}

TEST(Determinism, IdenticalRunsProduceIdenticalStats) {
  HvConfig config = two_partition_config();
  Hypervisor hv1(config), hv2(config);
  auto s1 = hv1.run(20'000);
  auto s2 = hv2.run(20'000);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s1.value().context_switches, s2.value().context_switches);
  for (std::size_t i = 0; i < s1.value().partitions.size(); ++i) {
    EXPECT_EQ(s1.value().partitions[i].cpu_time, s2.value().partitions[i].cpu_time);
    EXPECT_EQ(s1.value().partitions[i].max_jitter,
              s2.value().partitions[i].max_jitter);
  }
}

}  // namespace
}  // namespace hermes::hv

// Plan switching (XtratuM mode changes) appended as a separate suite.
namespace hermes::hv {
namespace {

HvConfig mode_change_config() {
  HvConfig config = two_partition_config();
  // Plan 1: emergency mode — partition 0 gets nearly the whole frame.
  CyclicPlan emergency;
  emergency.major_frame = 1000;
  emergency.per_core.assign(kNumCores, {});
  emergency.per_core[0] = {{0, 900, 0, 0}};
  config.extra_plans = {emergency};
  config.partitions[0].system = true;
  return config;
}

TEST(PlanSwitch, AppliedAtFrameBoundary) {
  HvConfig config = mode_change_config();
  int jobs = 0;
  config.partitions[0].on_job = [&jobs](PartitionApi& api) {
    if (++jobs == 3) {
      EXPECT_TRUE(api.switch_plan(1).ok());
    }
  };
  Hypervisor hv(config);
  auto stats = hv.run(10'000);
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  EXPECT_EQ(stats.value().plan_switches, 1u);
  EXPECT_EQ(stats.value().final_plan, 1u);
  // Under plan 1, partition 1 is never scheduled: its later jobs miss.
  EXPECT_GT(stats.value().partitions[1].deadline_misses, 0u);
  // Partition 0 keeps meeting deadlines in both modes.
  EXPECT_EQ(stats.value().partitions[0].deadline_misses, 0u);
}

TEST(PlanSwitch, NonSystemPartitionRejected) {
  HvConfig config = mode_change_config();
  config.partitions[0].system = false;
  config.partitions[0].on_job = [](PartitionApi& api) {
    EXPECT_FALSE(api.switch_plan(1).ok());
  };
  Hypervisor hv(config);
  auto stats = hv.run(3'000);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().plan_switches, 0u);
  EXPECT_EQ(stats.value().final_plan, 0u);
}

TEST(PlanSwitch, UnknownPlanRejected) {
  HvConfig config = mode_change_config();
  config.partitions[0].on_job = [](PartitionApi& api) {
    EXPECT_FALSE(api.switch_plan(7).ok());
  };
  Hypervisor hv(config);
  auto stats = hv.run(2'000);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().plan_switches, 0u);
}

TEST(PlanSwitch, ExtraPlansValidatedToo) {
  HvConfig config = mode_change_config();
  config.extra_plans[0].per_core[0].push_back({500, 600, 0, 0});  // overlap
  Hypervisor hv(config);
  EXPECT_FALSE(hv.validate().ok());
}

TEST(PlanSwitch, SwitchBackAndForth) {
  HvConfig config = mode_change_config();
  int jobs = 0;
  config.partitions[0].on_job = [&jobs](PartitionApi& api) {
    ++jobs;
    if (jobs == 2) (void)api.switch_plan(1);
    if (jobs == 5) (void)api.switch_plan(0);
  };
  Hypervisor hv(config);
  auto stats = hv.run(10'000);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().plan_switches, 2u);
  EXPECT_EQ(stats.value().final_plan, 0u);
  // After returning to the boot plan, partition 1 runs again.
  EXPECT_GT(stats.value().partitions[1].jobs_completed, 0u);
}

}  // namespace
}  // namespace hermes::hv

// Multi-process guest scheduling tests appended as a separate suite.
namespace hermes::hv {
namespace {

HvConfig guest_config() {
  HvConfig config;
  config.plan.major_frame = 1000;
  config.plan.per_core.assign(kNumCores, {});
  config.plan.per_core[0] = {{0, 900, 0, 0}};
  PartitionConfig guest;
  guest.name = "rtos_guest";
  guest.region = {0, 0x1000};
  config.partitions = {guest};
  return config;
}

TEST(GuestProcesses, AllProcessesScheduled) {
  HvConfig config = guest_config();
  ProcessConfig fast{"fast", {250, 0, 50}, 2, nullptr};
  ProcessConfig slow{"slow", {1000, 0, 300}, 1, nullptr};
  config.partitions[0].processes = {fast, slow};
  Hypervisor hv(config);
  auto stats = hv.run(10'000);
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  const PartitionStats& p = stats.value().partitions[0];
  ASSERT_EQ(p.processes.size(), 2u);
  EXPECT_EQ(p.processes[0].jobs_completed, 40u);  // 4 per frame x 10
  EXPECT_EQ(p.processes[1].jobs_completed, 10u);
  EXPECT_EQ(p.deadline_misses, 0u);
  EXPECT_EQ(p.cpu_time, 40u * 50u + 10u * 300u);
}

TEST(GuestProcesses, HigherPriorityPreempts) {
  HvConfig config = guest_config();
  // Low-priority hog releases at t=0 and needs 600 us; high-priority task
  // releases every 250 us with a tight 100 us deadline — it can only meet
  // it by preempting the hog.
  ProcessConfig urgent{"urgent", {250, 100, 20}, 5, nullptr};
  ProcessConfig hog{"hog", {1000, 0, 600}, 1, nullptr};
  config.partitions[0].processes = {urgent, hog};
  Hypervisor hv(config);
  auto stats = hv.run(10'000);
  ASSERT_TRUE(stats.ok());
  const PartitionStats& p = stats.value().partitions[0];
  EXPECT_EQ(p.processes[0].deadline_misses, 0u)
      << "urgent task must preempt the hog";
  EXPECT_EQ(p.processes[1].deadline_misses, 0u)
      << "the hog still fits its period";
  EXPECT_GT(p.processes[1].preemptions, 0u);
  EXPECT_LE(p.processes[0].max_response, 100u);
}

TEST(GuestProcesses, WithoutPriorityUrgentTaskMisses) {
  // The same workload with inverted priorities: the hog blocks the urgent
  // task past its 100 us deadline.
  HvConfig config = guest_config();
  ProcessConfig urgent{"urgent", {250, 100, 20}, 1, nullptr};
  ProcessConfig hog{"hog", {1000, 0, 600}, 5, nullptr};
  config.partitions[0].processes = {urgent, hog};
  Hypervisor hv(config);
  auto stats = hv.run(10'000);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats.value().partitions[0].processes[0].deadline_misses, 0u);
}

TEST(GuestProcesses, PayloadsRunPerProcess) {
  HvConfig config = guest_config();
  int fast_runs = 0, slow_runs = 0;
  ProcessConfig fast{"fast", {500, 0, 50}, 2,
                     [&fast_runs](PartitionApi&) { ++fast_runs; }};
  ProcessConfig slow{"slow", {1000, 0, 100}, 1,
                     [&slow_runs](PartitionApi&) { ++slow_runs; }};
  config.partitions[0].processes = {fast, slow};
  Hypervisor hv(config);
  ASSERT_TRUE(hv.run(5'000).ok());
  EXPECT_EQ(fast_runs, 10);
  EXPECT_EQ(slow_runs, 5);
}

TEST(GuestProcesses, ShorthandStillWorks) {
  // The single-profile shorthand is one priority-0 process.
  HvConfig config = guest_config();
  config.partitions[0].profile = {1000, 0, 200};
  Hypervisor hv(config);
  auto stats = hv.run(3'000);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats.value().partitions[0].processes.size(), 1u);
  EXPECT_EQ(stats.value().partitions[0].processes[0].jobs_completed, 3u);
}

}  // namespace
}  // namespace hermes::hv
