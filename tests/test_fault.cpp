// Tests for the radiation-hardening substrate: TMR, SECDED EDAC, SEU
// injection, scrubbed memories.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fault/edac.hpp"
#include "fault/scrub_memory.hpp"
#include "fault/seu.hpp"
#include "fault/tmr.hpp"

namespace hermes::fault {
namespace {

TEST(Tmr, BitwiseVoteMajority) {
  const VoteResult clean = vote_bitwise(0xAB, 0xAB, 0xAB);
  EXPECT_EQ(clean.value, 0xABu);
  EXPECT_FALSE(clean.corrected);

  const VoteResult one_bad = vote_bitwise(0xAB, 0xAB, 0x00);
  EXPECT_EQ(one_bad.value, 0xABu);
  EXPECT_TRUE(one_bad.corrected);

  // Independent single-bit hits in different replicas still vote clean.
  const VoteResult scattered = vote_bitwise(0xAB ^ 0x01, 0xAB ^ 0x10, 0xAB);
  EXPECT_EQ(scattered.value, 0xABu);
  EXPECT_TRUE(scattered.corrected);
}

TEST(Tmr, WordVoteUnrecoverable) {
  const VoteResult ok = vote_word(1, 2, 1);
  EXPECT_EQ(ok.value, 1u);
  EXPECT_TRUE(ok.corrected);
  const VoteResult bad = vote_word(1, 2, 3);
  EXPECT_TRUE(bad.unrecoverable);
}

TEST(Tmr, ImageVoting) {
  std::vector<std::uint8_t> a = {1, 2, 3, 4}, b = a, c = a;
  b[1] ^= 0xFF;  // corrupt one replica
  c[3] ^= 0x01;
  std::vector<std::uint8_t> out;
  const TmrScrubStats stats = vote_images(a, b, c, out);
  EXPECT_EQ(out, (std::vector<std::uint8_t>{1, 2, 3, 4}));
  EXPECT_EQ(stats.corrected_words, 2u);
  EXPECT_EQ(stats.unrecoverable_words, 0u);
}

TEST(Edac, RoundTripCleanWords) {
  for (std::uint32_t v : {0u, 1u, 0xFFFFFFFFu, 0xDEADBEEFu, 0x80000001u}) {
    std::uint32_t decoded = 0;
    EXPECT_EQ(edac_decode(edac_encode(v), decoded), EdacStatus::kClean);
    EXPECT_EQ(decoded, v);
  }
}

// Property: every single-bit flip in the 39-bit codeword is corrected.
class EdacSingleBit : public ::testing::TestWithParam<unsigned> {};

TEST_P(EdacSingleBit, Corrected) {
  const unsigned bit = GetParam();
  const std::uint32_t data = 0xC0FFEE42u;
  const std::uint64_t codeword = edac_encode(data) ^ (1ULL << bit);
  std::uint32_t decoded = 0;
  EXPECT_EQ(edac_decode(codeword, decoded), EdacStatus::kCorrected);
  EXPECT_EQ(decoded, data);
}

INSTANTIATE_TEST_SUITE_P(AllCodewordBits, EdacSingleBit,
                         ::testing::Range(0u, kEdacCodewordBits));

TEST(Edac, DoubleErrorsDetected) {
  Rng rng(11);
  const std::uint32_t data = 0x12345678u;
  const std::uint64_t clean = edac_encode(data);
  for (int trial = 0; trial < 200; ++trial) {
    const unsigned b1 = static_cast<unsigned>(rng.next_below(kEdacCodewordBits));
    unsigned b2 = static_cast<unsigned>(rng.next_below(kEdacCodewordBits));
    if (b1 == b2) continue;
    std::uint32_t decoded = 0;
    EXPECT_EQ(edac_decode(clean ^ (1ULL << b1) ^ (1ULL << b2), decoded),
              EdacStatus::kDoubleError)
        << "bits " << b1 << "," << b2;
  }
}

TEST(Seu, DrawRespectsRate) {
  Rng rng(3);
  SeuCampaignConfig config;
  config.upset_probability_per_word = 0.5;
  config.bits_per_word = 32;
  const auto upsets = draw_upsets(config, 10000, rng);
  // Expect roughly 5000 hits; allow a wide band.
  EXPECT_GT(upsets.size(), 4000u);
  EXPECT_LT(upsets.size(), 6000u);
  for (const Upset& upset : upsets) {
    EXPECT_LT(upset.bit_index, 32u);
    EXPECT_LT(upset.word_index, 10000u);
  }
}

TEST(Seu, ZeroRateProducesNothing) {
  Rng rng(3);
  SeuCampaignConfig config;
  config.upset_probability_per_word = 0.0;
  EXPECT_TRUE(draw_upsets(config, 1000, rng).empty());
}

TEST(Seu, ApplyFlipsExactBits) {
  std::vector<std::uint64_t> words = {0, 0, 0};
  apply_upsets(words, {{0, 3}, {2, 0}, {2, 0}});
  EXPECT_EQ(words[0], 8u);
  EXPECT_EQ(words[1], 0u);
  EXPECT_EQ(words[2], 0u);  // double flip cancels
}

TEST(ScrubMemory, ReadBackThroughAllSchemes) {
  for (Protection p : {Protection::kNone, Protection::kEdac, Protection::kTmr}) {
    ScrubMemory memory(64, p);
    for (std::size_t i = 0; i < 64; ++i) {
      memory.write(i, static_cast<std::uint32_t>(i * 2654435761u));
    }
    for (std::size_t i = 0; i < 64; ++i) {
      EXPECT_EQ(memory.read(i), static_cast<std::uint32_t>(i * 2654435761u))
          << to_string(p) << " index " << i;
    }
  }
}

TEST(ScrubMemory, UnprotectedSuffersSilentCorruption) {
  ScrubMemory memory(4096, Protection::kNone);
  for (std::size_t i = 0; i < memory.size(); ++i) {
    memory.write(i, 0xA5A5A5A5u);
  }
  Rng rng(5);
  SeuCampaignConfig config;
  config.upset_probability_per_word = 0.01;
  const ScrubReport report = memory.inject_and_scrub(config, rng);
  EXPECT_GT(report.injected_upsets, 0u);
  EXPECT_EQ(report.corrected, 0u);
  EXPECT_GT(report.silent_corruptions, 0u);
}

TEST(ScrubMemory, EdacMasksSingleUpsets) {
  ScrubMemory memory(4096, Protection::kEdac);
  for (std::size_t i = 0; i < memory.size(); ++i) {
    memory.write(i, static_cast<std::uint32_t>(i));
  }
  Rng rng(6);
  SeuCampaignConfig config;
  config.upset_probability_per_word = 0.01;  // ~1 bit/word max at this rate
  const ScrubReport report = memory.inject_and_scrub(config, rng);
  EXPECT_GT(report.injected_upsets, 0u);
  EXPECT_EQ(report.silent_corruptions, 0u);
  EXPECT_GE(report.corrected, report.injected_upsets -
                                  report.detected_uncorrectable * 2);
  // All data still correct through the read path.
  for (std::size_t i = 0; i < memory.size(); ++i) {
    if (report.detected_uncorrectable == 0) {
      EXPECT_EQ(memory.read(i), static_cast<std::uint32_t>(i));
    }
  }
}

TEST(ScrubMemory, TmrMasksSingleUpsetsPerReplica) {
  ScrubMemory memory(4096, Protection::kTmr);
  for (std::size_t i = 0; i < memory.size(); ++i) {
    memory.write(i, 0xDEADBEEFu);
  }
  Rng rng(7);
  SeuCampaignConfig config;
  config.upset_probability_per_word = 0.02;
  const ScrubReport report = memory.inject_and_scrub(config, rng);
  EXPECT_GT(report.injected_upsets, 0u);
  EXPECT_EQ(report.silent_corruptions, 0u);
  for (std::size_t i = 0; i < memory.size(); ++i) {
    EXPECT_EQ(memory.read(i), 0xDEADBEEFu);
  }
}

// Parameterized scrub-interval property: repeated scrubbing keeps protected
// memories clean at moderate rates because corrections are rewritten.
class ScrubCampaign : public ::testing::TestWithParam<Protection> {};

TEST_P(ScrubCampaign, TenIntervalsNoSilentCorruption) {
  if (GetParam() == Protection::kNone) GTEST_SKIP();
  ScrubMemory memory(1024, GetParam());
  for (std::size_t i = 0; i < memory.size(); ++i) {
    memory.write(i, static_cast<std::uint32_t>(i ^ 0x5555AAAAu));
  }
  Rng rng(8);
  SeuCampaignConfig config;
  config.upset_probability_per_word = 0.005;
  std::size_t silent = 0;
  for (int interval = 0; interval < 10; ++interval) {
    silent += memory.inject_and_scrub(config, rng).silent_corruptions;
  }
  EXPECT_EQ(silent, 0u);
}

INSTANTIATE_TEST_SUITE_P(Schemes, ScrubCampaign,
                         ::testing::Values(Protection::kNone, Protection::kEdac,
                                           Protection::kTmr));

}  // namespace
}  // namespace hermes::fault
