// Shared compile-service request corpus.
//
// One deterministic generator feeds the differential cache-oracle suite, the
// service scheduling tests, the soak families and bench_svc, so every
// consumer exercises the same mix: source-level jobs drawn from the five app
// kernel families with varied geometry/constraints, and netlist-level jobs
// drawn from the engine fuzz generator (tests/netlist_fuzz.hpp). Requests are
// pure functions of (index, seed): two corpora built with the same arguments
// are identical, which is what the warm-vs-cold and serial-vs-pooled oracles
// rely on.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "apps/kernels.hpp"
#include "common/rng.hpp"
#include "netlist_fuzz.hpp"
#include "svc/job.hpp"

namespace hermes::svc::corpus {

/// Deterministic kernel for `index`: cycles the app families with varied
/// geometry so neighbouring indices produce distinct schedule keys.
inline apps::KernelSpec kernel_for(int index) {
  switch (index % 5) {
    case 0: return apps::sobel_kernel(4 + 2 * (index % 3), 4);
    case 1: return apps::fir_kernel(3 + index % 4, 16 + 8 * (index % 3));
    case 2: return apps::dense_relu_kernel(3 + index % 3, 3 + index % 4);
    case 3: return apps::matmul_kernel(2 + index % 3);
    default: return apps::histogram_kernel(32 + 16 * (index % 3));
  }
}

/// Source-level request `index`. The clock constraint varies per index, so
/// every index is a distinct compile (a cold drain of a corpus really is
/// cold); indices only repeat stage keys when the corpus itself repeats.
inline CompileRequest source_request(int index,
                                     std::string tenant = "default") {
  apps::KernelSpec spec = kernel_for(index);
  CompileRequest request;
  request.tenant = std::move(tenant);
  request.source = std::move(spec.source);
  request.flow.top = std::move(spec.name);
  request.flow.constraints.clock_period_ns = 8.0 + 0.01 * index;
  request.flow.constraints.multipliers = 1 + index % 2;
  request.backend.place.seed = 1 + static_cast<unsigned>(index % 4);
  return request;
}

/// Netlist-level request: a random fuzz design entering the flow at the map
/// stage. `rng` must be corpus-owned so indices stay reproducible.
inline CompileRequest netlist_request(Rng& rng, int index,
                                      std::string tenant = "default") {
  hw::fuzz::RandomDesign design =
      hw::fuzz::make_random_design(rng, index, "svcjob");
  CompileRequest request;
  request.tenant = std::move(tenant);
  request.module = std::make_shared<hw::Module>(std::move(design.module));
  request.characterize = false;  // no source stage; sweep adds nothing
  request.backend.place.seed = 1 + static_cast<unsigned>(index % 4);
  return request;
}

/// `count` mixed requests (2/3 source-level, 1/3 netlist-level), tenants
/// assigned round-robin from `tenants`. Deterministic in (count, seed).
inline std::vector<CompileRequest> mixed_corpus(
    int count, std::uint64_t seed,
    const std::vector<std::string>& tenants = {"default"}) {
  Rng rng(seed);
  std::vector<CompileRequest> requests;
  requests.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const std::string& tenant =
        tenants[static_cast<std::size_t>(i) % tenants.size()];
    if (i % 3 == 2) {
      requests.push_back(netlist_request(rng, i, tenant));
    } else {
      requests.push_back(source_request(i, tenant));
    }
  }
  return requests;
}

}  // namespace hermes::svc::corpus
