// End-to-end HLS flow tests: C source through parse/lower/optimize/schedule/
// bind/FSMD, co-simulated against the IR interpreter (the correctness story
// of the whole Bambu-style toolchain).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "hls/flow.hpp"
#include "hls/testbench.hpp"

namespace hermes::hls {
namespace {

FlowOptions default_options(std::string top) {
  FlowOptions options;
  options.top = std::move(top);
  options.constraints.clock_period_ns = 10.0;
  return options;
}

TEST(HlsFlow, ScalarArithmetic) {
  const char* source = R"(
    int kernel(int a, int b) {
      return (a + b) * (a - b) + 7;
    }
  )";
  auto flow = run_flow(source, default_options("kernel"));
  ASSERT_TRUE(flow.ok()) << flow.status().to_string();
  auto result = cosimulate(flow.value(), {25, 13}, {});
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_TRUE(result.value().match) << result.value().mismatch;
  EXPECT_EQ(result.value().return_value,
            static_cast<std::uint64_t>((25 + 13) * (25 - 13) + 7));
}

TEST(HlsFlow, ControlFlowGcd) {
  const char* source = R"(
    int gcd(int a, int b) {
      while (b != 0) {
        int t = b;
        b = a % b;
        a = t;
      }
      return a;
    }
  )";
  auto flow = run_flow(source, default_options("gcd"));
  ASSERT_TRUE(flow.ok()) << flow.status().to_string();
  auto result = cosimulate(flow.value(), {252, 105}, {});
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_TRUE(result.value().match) << result.value().mismatch;
  EXPECT_EQ(result.value().return_value, 21u);
}

TEST(HlsFlow, ArraySum) {
  const char* source = R"(
    int sum(int data[16], int n) {
      int acc = 0;
      for (int i = 0; i < n; i = i + 1) {
        acc = acc + data[i];
      }
      return acc;
    }
  )";
  auto flow = run_flow(source, default_options("sum"));
  ASSERT_TRUE(flow.ok()) << flow.status().to_string();
  std::vector<std::uint64_t> data;
  std::uint64_t expect = 0;
  for (int i = 0; i < 16; ++i) {
    data.push_back(static_cast<std::uint64_t>(i * 3 + 1));
    expect += static_cast<std::uint64_t>(i * 3 + 1);
  }
  auto result = cosimulate(flow.value(), {16}, {{0, data}});
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_TRUE(result.value().match) << result.value().mismatch;
  EXPECT_EQ(result.value().return_value, expect);
}

TEST(HlsFlow, ArrayWriteback) {
  const char* source = R"(
    void scale(int data[8], int factor) {
      for (int i = 0; i < 8; i = i + 1) {
        data[i] = data[i] * factor + i;
      }
    }
  )";
  auto flow = run_flow(source, default_options("scale"));
  ASSERT_TRUE(flow.ok()) << flow.status().to_string();
  std::vector<std::uint64_t> data = {1, 2, 3, 4, 5, 6, 7, 8};
  auto result = cosimulate(flow.value(), {5}, {{0, data}});
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_TRUE(result.value().match) << result.value().mismatch;
}

TEST(HlsFlow, FunctionInlining) {
  const char* source = R"(
    int square(int x) { return x * x; }
    int hypot2(int a, int b) { return square(a) + square(b); }
  )";
  auto flow = run_flow(source, default_options("hypot2"));
  ASSERT_TRUE(flow.ok()) << flow.status().to_string();
  auto result = cosimulate(flow.value(), {3, 4}, {});
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_TRUE(result.value().match) << result.value().mismatch;
  EXPECT_EQ(result.value().return_value, 25u);
}

TEST(HlsFlow, SignedDivision) {
  const char* source = R"(
    int divmix(int a, int b) {
      return a / b + a % b;
    }
  )";
  auto flow = run_flow(source, default_options("divmix"));
  ASSERT_TRUE(flow.ok()) << flow.status().to_string();
  // -17 as u64 two's complement of int32.
  const std::uint64_t neg17 = 0xFFFFFFEFull;
  auto result = cosimulate(flow.value(), {neg17, 5}, {});
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_TRUE(result.value().match) << result.value().mismatch;
}

TEST(HlsFlow, RandomizedAgainstInterpreter) {
  const char* source = R"(
    uint32_t mix(uint32_t a, uint32_t b, uint32_t c) {
      uint32_t x = a ^ (b << 3);
      if (x > c) {
        x = x - c;
      } else {
        x = c - x + (a & b);
      }
      uint32_t acc = 0;
      for (int i = 0; i < 4; i = i + 1) {
        acc = acc + (x >> i);
      }
      return acc;
    }
  )";
  auto flow = run_flow(source, default_options("mix"));
  ASSERT_TRUE(flow.ok()) << flow.status().to_string();
  Rng rng(42);
  for (int trial = 0; trial < 25; ++trial) {
    const std::uint64_t a = rng.next_u64() & 0xFFFFFFFFull;
    const std::uint64_t b = rng.next_u64() & 0xFFFFFFFFull;
    const std::uint64_t c = rng.next_u64() & 0xFFFFFFFFull;
    auto result = cosimulate(flow.value(), {a, b, c}, {});
    ASSERT_TRUE(result.ok()) << result.status().to_string();
    EXPECT_TRUE(result.value().match)
        << "trial " << trial << ": " << result.value().mismatch;
  }
}

TEST(HlsFlow, LoopUnrollingPreservesSemantics) {
  const char* source = R"(
    int dot(int a[8], int b[8]) {
      int acc = 0;
      for (int i = 0; i < 8; i = i + 1) {
        acc = acc + a[i] * b[i];
      }
      return acc;
    }
  )";
  FlowOptions rolled = default_options("dot");
  FlowOptions unrolled = default_options("dot");
  unrolled.unroll_limit = 16;

  auto flow_r = run_flow(source, rolled);
  auto flow_u = run_flow(source, unrolled);
  ASSERT_TRUE(flow_r.ok()) << flow_r.status().to_string();
  ASSERT_TRUE(flow_u.ok()) << flow_u.status().to_string();

  std::vector<std::uint64_t> a = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<std::uint64_t> b = {8, 7, 6, 5, 4, 3, 2, 1};
  auto r = cosimulate(flow_r.value(), {}, {{0, a}, {1, b}});
  auto u = cosimulate(flow_u.value(), {}, {{0, a}, {1, b}});
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  ASSERT_TRUE(u.ok()) << u.status().to_string();
  EXPECT_TRUE(r.value().match) << r.value().mismatch;
  EXPECT_TRUE(u.value().match) << u.value().mismatch;
  EXPECT_EQ(r.value().return_value, u.value().return_value);
  // Unrolling must not be slower.
  EXPECT_LE(u.value().hw_cycles, r.value().hw_cycles);
}

TEST(HlsFlow, LocalArrayWithInitializer) {
  const char* source = R"(
    int lookup(int idx) {
      int table[8] = {10, 20, 30, 40, 50, 60, 70, 80};
      return table[idx & 7];
    }
  )";
  auto flow = run_flow(source, default_options("lookup"));
  ASSERT_TRUE(flow.ok()) << flow.status().to_string();
  for (std::uint64_t i = 0; i < 8; ++i) {
    auto result = cosimulate(flow.value(), {i}, {});
    ASSERT_TRUE(result.ok()) << result.status().to_string();
    EXPECT_EQ(result.value().return_value, (i + 1) * 10);
  }
}

TEST(HlsFlow, ChainingReducesStates) {
  const char* source = R"(
    int chain(int a, int b, int c, int d) {
      return ((a ^ b) | (c & d)) + (a & c);
    }
  )";
  FlowOptions chained = default_options("chain");
  FlowOptions unchained = default_options("chain");
  unchained.constraints.allow_chaining = false;
  auto flow_c = run_flow(source, chained);
  auto flow_n = run_flow(source, unchained);
  ASSERT_TRUE(flow_c.ok());
  ASSERT_TRUE(flow_n.ok());
  auto rc = cosimulate(flow_c.value(), {11, 22, 33, 44}, {});
  auto rn = cosimulate(flow_n.value(), {11, 22, 33, 44}, {});
  ASSERT_TRUE(rc.ok());
  ASSERT_TRUE(rn.ok());
  EXPECT_TRUE(rc.value().match);
  EXPECT_TRUE(rn.value().match);
  EXPECT_EQ(rc.value().return_value, rn.value().return_value);
  EXPECT_LT(rc.value().hw_cycles, rn.value().hw_cycles);
}

TEST(HlsFlow, VerilogIsEmitted) {
  const char* source = "int id(int x) { return x; }";
  auto flow = run_flow(source, default_options("id"));
  ASSERT_TRUE(flow.ok());
  EXPECT_NE(flow.value().verilog.find("module id"), std::string::npos);
  EXPECT_NE(flow.value().verilog.find("endmodule"), std::string::npos);
}

}  // namespace
}  // namespace hermes::hls

// Register-merging binding tests appended as a separate suite.
namespace hermes::hls {
namespace {

FlowOptions merge_options(std::string top, bool merge) {
  FlowOptions options;
  options.top = std::move(top);
  options.constraints.merge_registers = merge;
  return options;
}

TEST(RegisterMerging, ReducesRegisterCount) {
  // A wide expression tree creates many short-lived temporaries.
  const char* source = R"(
    int wide(int a, int b, int c, int d, int e, int f) {
      int t1 = a * b;
      int t2 = c * d;
      int t3 = e * f;
      int t4 = t1 + t2;
      int t5 = t4 + t3;
      int t6 = t5 * t1;
      return t6 - t2;
    }
  )";
  auto merged = run_flow(source, merge_options("wide", true));
  auto unmerged = run_flow(source, merge_options("wide", false));
  ASSERT_TRUE(merged.ok());
  ASSERT_TRUE(unmerged.ok());
  EXPECT_LT(merged.value().binding.stats.datapath_registers,
            unmerged.value().binding.stats.datapath_registers);
  EXPECT_GT(merged.value().binding.stats.merged_registers, 0u);
  // Semantics identical.
  for (std::uint64_t seed : {1ull, 77ull, 0xFFFFFFull}) {
    auto rm = cosimulate(merged.value(), {seed, 3, 5, 7, 11, 13}, {});
    auto ru = cosimulate(unmerged.value(), {seed, 3, 5, 7, 11, 13}, {});
    ASSERT_TRUE(rm.ok());
    ASSERT_TRUE(ru.ok());
    EXPECT_TRUE(rm.value().match) << rm.value().mismatch;
    EXPECT_EQ(rm.value().return_value, ru.value().return_value);
    EXPECT_EQ(rm.value().hw_cycles, ru.value().hw_cycles)
        << "merging must not change the schedule";
  }
}

TEST(RegisterMerging, LoopCarriedValuesNeverMerged) {
  // acc and i are multi-def (loop-carried): they must keep their own
  // registers and the loop must still compute correctly.
  const char* source = R"(
    int acc_loop(int n) {
      int acc = 0;
      for (int i = 0; i < n; i = i + 1) {
        int sq = i * i;
        int cube = sq * i;
        acc = acc + cube - sq;
      }
      return acc;
    }
  )";
  auto flow = run_flow(source, merge_options("acc_loop", true));
  ASSERT_TRUE(flow.ok());
  auto result = cosimulate(flow.value(), {10}, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().match) << result.value().mismatch;
  std::int64_t expect = 0;
  for (int i = 0; i < 10; ++i) expect += i * i * i - i * i;
  EXPECT_EQ(result.value().return_value, static_cast<std::uint64_t>(expect));
}

TEST(RegisterMerging, DifferentialAcrossKernels) {
  const char* sources[] = {
      "int k1(int a[16]) { int s = 0; for (int i = 0; i < 16; i = i + 1) "
      "{ int x = a[i] * 3; int y = x + i; s = s + y; } return s; }",
      "int k2(int a, int b) { int p = a * b; int q = a + b; int r = p - q; "
      "int s = r * r; return s + p; }",
      "void k3(int a[8], int b[8]) { for (int i = 0; i < 8; i = i + 1) "
      "{ int t = a[i] + 1; int u = t * t; b[i] = u - t; } }",
  };
  const char* tops[] = {"k1", "k2", "k3"};
  Rng rng(515);
  for (int k = 0; k < 3; ++k) {
    auto merged = run_flow(sources[k], merge_options(tops[k], true));
    auto unmerged = run_flow(sources[k], merge_options(tops[k], false));
    ASSERT_TRUE(merged.ok()) << tops[k];
    ASSERT_TRUE(unmerged.ok()) << tops[k];
    std::map<std::size_t, std::vector<std::uint64_t>> images;
    std::vector<std::uint64_t> args;
    for (std::size_t m = 0; m < merged.value().function.memories().size(); ++m) {
      const ir::MemDecl& mem = merged.value().function.memories()[m];
      if (!mem.is_interface) continue;
      std::vector<std::uint64_t> image(mem.depth);
      for (auto& w : image) w = rng.next_u64() & 0xFFFF;
      images[m] = std::move(image);
    }
    for (const ir::ParamDecl& p : merged.value().function.params) {
      if (!p.is_array()) args.push_back(rng.next_u64() & 0xFF);
    }
    auto rm = cosimulate(merged.value(), args, images);
    auto ru = cosimulate(unmerged.value(), args, images);
    ASSERT_TRUE(rm.ok()) << tops[k];
    ASSERT_TRUE(ru.ok()) << tops[k];
    EXPECT_TRUE(rm.value().match) << tops[k] << ": " << rm.value().mismatch;
    EXPECT_TRUE(ru.value().match) << tops[k];
    EXPECT_EQ(rm.value().return_value, ru.value().return_value) << tops[k];
  }
}

}  // namespace
}  // namespace hermes::hls

// Multi-dimensional array end-to-end tests appended as a separate suite.
namespace hermes::hls {
namespace {

TEST(MultiDim, RowMajorLinearization) {
  // grid[i][j] must land at flat index i*cols + j (interface memory layout).
  const char* source = R"(
    void fill(int32_t grid[3][5]) {
      for (int i = 0; i < 3; i = i + 1) {
        for (int j = 0; j < 5; j = j + 1) {
          grid[i][j] = i * 100 + j;
        }
      }
    }
  )";
  FlowOptions options;
  options.top = "fill";
  auto flow = run_flow(source, options);
  ASSERT_TRUE(flow.ok()) << flow.status().to_string();
  EXPECT_EQ(flow.value().function.memories()[0].depth, 15u);
  auto result = cosimulate(flow.value(), {}, {{0, std::vector<std::uint64_t>(15, 0)}});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().match) << result.value().mismatch;
  ir::Interpreter interp(flow.value().function);
  interp.set_memory(0, std::vector<std::uint64_t>(15, 0));
  ASSERT_TRUE(interp.run({}).ok());
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 5; ++j) {
      EXPECT_EQ(interp.memory(0)[i * 5 + j],
                static_cast<std::uint64_t>(i * 100 + j));
    }
  }
}

TEST(MultiDim, TransposeCosim) {
  const char* source = R"(
    void transpose(const int16_t in[6][4], int16_t out[4][6]) {
      for (int i = 0; i < 6; i = i + 1) {
        for (int j = 0; j < 4; j = j + 1) {
          out[j][i] = in[i][j];
        }
      }
    }
  )";
  FlowOptions options;
  options.top = "transpose";
  auto flow = run_flow(source, options);
  ASSERT_TRUE(flow.ok()) << flow.status().to_string();
  std::vector<std::uint64_t> in(24);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = i * 7 + 1;
  auto result = cosimulate(flow.value(), {}, {{0, in}, {1, {}}});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().match) << result.value().mismatch;
}

TEST(MultiDim, ThreeDimensions) {
  const char* source = R"(
    int32_t sum3d(const int32_t t[2][3][4]) {
      int32_t s = 0;
      for (int i = 0; i < 2; i = i + 1) {
        for (int j = 0; j < 3; j = j + 1) {
          for (int k = 0; k < 4; k = k + 1) {
            s = s + t[i][j][k];
          }
        }
      }
      return s;
    }
  )";
  FlowOptions options;
  options.top = "sum3d";
  auto flow = run_flow(source, options);
  ASSERT_TRUE(flow.ok()) << flow.status().to_string();
  std::vector<std::uint64_t> t(24);
  std::uint64_t expect = 0;
  for (std::size_t i = 0; i < 24; ++i) {
    t[i] = i + 1;
    expect += i + 1;
  }
  auto result = cosimulate(flow.value(), {}, {{0, t}});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().match);
  EXPECT_EQ(result.value().return_value, expect);
}

}  // namespace
}  // namespace hermes::hls
