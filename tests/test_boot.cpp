// Tests for the boot substrate: flash TMR, SpaceWire protocol, load list,
// SoC bring-up rules, and the BL0 -> BL1 -> BL2 chain with fault injection.
#include <gtest/gtest.h>

#include "boot/bl.hpp"
#include "common/rng.hpp"
#include "hls/flow.hpp"
#include "nxmap/flow.hpp"

namespace hermes::boot {
namespace {

std::vector<std::uint8_t> pattern_image(std::size_t bytes, std::uint8_t seed) {
  std::vector<std::uint8_t> image(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    image[i] = static_cast<std::uint8_t>(seed + i * 7);
  }
  return image;
}

/// A minimal staged environment: BL1 image + one software image + BL2.
struct Staged {
  BootEnvironment env;
  LoadList list;
  std::vector<std::vector<std::uint8_t>> images;

  explicit Staged(unsigned flash_replicas = 3, double ber = 0.0)
      : env(flash_replicas, ber) {
    const auto bl1 = pattern_image(4096, 0x11);
    images = {pattern_image(2048, 0x22), pattern_image(1024, 0x33)};
    LoadEntry sw;
    sw.kind = LoadKind::kSoftware;
    sw.name = "payload";
    sw.dest_addr = MemoryMap::kDdrBase + 0x1000;
    LoadEntry bl2;
    bl2.kind = LoadKind::kBl2;
    bl2.name = "bl2";
    bl2.dest_addr = MemoryMap::kDdrBase;
    list.entries = {sw, bl2};
    stage_boot_media(env, bl1, list, images);
  }
};

TEST(Flash, TmrBankCorrectsSingleDeviceCorruption) {
  FlashBank bank(4096, 3);
  const auto image = pattern_image(512, 0x42);
  bank.program(0, image);
  Rng rng(1);
  bank.device(1).inject_bitflips(200, rng);  // heavy damage, one replica
  std::vector<std::uint8_t> readback(512);
  const FlashBank::ReadResult result = bank.read(0, readback);
  EXPECT_EQ(readback, image);
  EXPECT_GT(result.corrected_bytes, 0u);
}

TEST(Flash, SingleBankHasNoProtection) {
  FlashBank bank(4096, 1);
  const auto image = pattern_image(512, 0x42);
  bank.program(0, image);
  Rng rng(2);
  bank.device(0).inject_bitflips(50, rng);
  std::vector<std::uint8_t> readback(512);
  bank.read(0, readback);
  EXPECT_NE(readback, image);
}

TEST(Flash, ReadChargesCycles) {
  FlashBank bank(4096, 3);
  std::vector<std::uint8_t> small(16), large(1024);
  const auto small_read = bank.read(0, small);
  const auto large_read = bank.read(0, large);
  EXPECT_GT(large_read.cycles, small_read.cycles);
}

TEST(SpaceWire, FetchHostedObject) {
  SpaceWireLink link;
  link.host_object("obj", pattern_image(1000, 0x55));
  std::uint64_t cycles = 0;
  auto fetched = link.fetch("obj", cycles);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched.value(), pattern_image(1000, 0x55));
  EXPECT_GT(cycles, 1000u);  // at least a cycle per byte at 10 cycles/byte
}

TEST(SpaceWire, UnknownObjectNacked) {
  SpaceWireLink link;
  std::uint64_t cycles = 0;
  EXPECT_FALSE(link.fetch("missing", cycles).ok());
}

TEST(SpaceWire, CrcRetriesRecoverNoisyLink) {
  // Moderate BER: chunks get corrupted but retries recover them.
  SpaceWireLink link(SpwTiming{}, 1e-5, 7);
  const auto object = pattern_image(8192, 0x77);
  link.host_object("big", object);
  std::uint64_t cycles = 0;
  auto fetched = link.fetch("big", cycles, 16);
  ASSERT_TRUE(fetched.ok()) << fetched.status().to_string();
  EXPECT_EQ(fetched.value(), object);
  EXPECT_GT(link.crc_errors_detected() + link.retries(), 0u);
}

TEST(LoadListFormat, RoundTrip) {
  LoadList list;
  const auto image = pattern_image(777, 3);
  list.entries.push_back(make_entry(LoadKind::kSoftware, "app", image, 0x100,
                                    MemoryMap::kDdrBase));
  list.entries.push_back(make_entry(LoadKind::kBitstream, "fpga", image, 0x800, 0));
  const auto bytes = serialize(list);
  auto parsed = parse_load_list(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  ASSERT_EQ(parsed.value().entries.size(), 2u);
  EXPECT_EQ(parsed.value().entries[0].name, "app");
  EXPECT_EQ(parsed.value().entries[0].size, 777u);
  EXPECT_EQ(parsed.value().entries[0].digest, sha256(image));
  EXPECT_EQ(parsed.value().entries[1].kind, LoadKind::kBitstream);
}

TEST(LoadListFormat, DetectsCorruption) {
  LoadList list;
  list.entries.push_back(make_entry(LoadKind::kSoftware, "app",
                                    pattern_image(64, 1), 0, 0));
  auto bytes = serialize(list);
  Rng rng(4);
  for (int trial = 0; trial < 30; ++trial) {
    auto corrupted = bytes;
    corrupted[rng.next_below(corrupted.size())] ^= 0x40;
    EXPECT_FALSE(parse_load_list(corrupted).ok());
  }
  bytes.resize(bytes.size() - 6);
  EXPECT_FALSE(parse_load_list(bytes).ok());
}

TEST(Soc, RegionGating) {
  Soc soc;
  std::uint8_t byte = 0;
  // DDR before init fails, after init works.
  EXPECT_FALSE(soc.write_bytes(MemoryMap::kDdrBase, std::span(&byte, 1)).ok());
  soc.ddr_ready = true;
  EXPECT_TRUE(soc.write_bytes(MemoryMap::kDdrBase, std::span(&byte, 1)).ok());
  // TCM requires enablement.
  EXPECT_FALSE(soc.read_bytes(MemoryMap::kTcmBase, std::span(&byte, 1)).ok());
  soc.tcm_enabled = true;
  EXPECT_TRUE(soc.read_bytes(MemoryMap::kTcmBase, std::span(&byte, 1)).ok());
  // Unmapped address.
  EXPECT_FALSE(soc.read_bytes(0x5000'0000, std::span(&byte, 1)).ok());
}

TEST(Soc, MpuEnforcement) {
  Soc soc;
  soc.ddr_ready = true;
  soc.mpu = {{MemoryMap::kDdrBase, 0x1000, /*writable=*/false}};
  soc.mpu_enabled = true;
  std::uint8_t byte = 7;
  EXPECT_TRUE(soc.read_bytes(MemoryMap::kDdrBase, std::span(&byte, 1)).ok());
  const Status write = soc.write_bytes(MemoryMap::kDdrBase, std::span(&byte, 1));
  EXPECT_FALSE(write.ok());
  EXPECT_EQ(write.code(), ErrorCode::kIsolationFault);
  // Outside all regions: rejected even for reads.
  EXPECT_FALSE(
      soc.read_bytes(MemoryMap::kDdrBase + 0x2000, std::span(&byte, 1)).ok());
}

TEST(Soc, EfpgaRejectsBadBitstream) {
  Soc soc;
  std::vector<std::uint8_t> garbage(100, 0xAB);
  const Status status = soc.program_efpga(garbage);
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(soc.efpga_programmed);
}

TEST(BootChain, HappyPathFromFlash) {
  Staged staged;
  const BootResult result = run_boot_chain(staged.env);
  EXPECT_TRUE(result.status.ok()) << result.status.to_string();
  EXPECT_EQ(result.reached, BootStage::kApplication);
  EXPECT_EQ(staged.env.soc.cores_released, hv::kNumCores);
  EXPECT_TRUE(staged.env.soc.ddr_ready);
  EXPECT_TRUE(staged.env.soc.mpu_enabled);
  EXPECT_GT(result.bl0_cycles, 0u);
  EXPECT_GT(result.report.total_cycles, result.bl0_cycles);
  // The payload actually landed in DDR.
  std::vector<std::uint8_t> deployed(staged.images[0].size());
  ASSERT_TRUE(staged.env.soc
                  .read_bytes(MemoryMap::kDdrBase + 0x1000, deployed)
                  .ok());
  EXPECT_EQ(deployed, staged.images[0]);
}

TEST(BootChain, HappyPathFromSpaceWire) {
  Staged staged;
  BootOptions options;
  options.bl1_source = BootSource::kSpaceWire;
  options.loadlist_source = BootSource::kSpaceWire;
  const BootResult result = run_boot_chain(staged.env, options);
  EXPECT_TRUE(result.status.ok()) << result.status.to_string();
  EXPECT_EQ(result.reached, BootStage::kApplication);
}

TEST(BootChain, ReportListsAllSteps) {
  Staged staged;
  const BootResult result = run_boot_chain(staged.env);
  ASSERT_TRUE(result.status.ok());
  const std::string report = result.report.render();
  for (const char* step :
       {"init_cpu0", "init_clock_plls", "init_ddr", "init_flash",
        "init_spacewire", "init_tightly_coupled", "init_mpu",
        "acquire_load_list", "deploy payload", "deploy bl2"}) {
    EXPECT_NE(report.find(step), std::string::npos) << step;
  }
}

TEST(BootChain, CorruptedBl1FallsBackToSpaceWire) {
  Staged staged;
  // Destroy the BL1 image in all three flash replicas.
  for (unsigned replica = 0; replica < 3; ++replica) {
    std::vector<std::uint8_t> junk(4096, 0x00);
    staged.env.flash.device(replica).program(FlashLayout::kBl1Image, junk);
  }
  const BootResult result = run_boot_chain(staged.env);
  EXPECT_TRUE(result.status.ok()) << result.status.to_string();
  EXPECT_EQ(result.reached, BootStage::kApplication);
}

TEST(BootChain, CorruptedBl1WithoutFallbackFails) {
  Staged staged;
  for (unsigned replica = 0; replica < 3; ++replica) {
    std::vector<std::uint8_t> junk(4096, 0x00);
    staged.env.flash.device(replica).program(FlashLayout::kBl1Image, junk);
  }
  BootOptions options;
  options.spacewire_fallback = false;
  const BootResult result = run_boot_chain(staged.env, options);
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(result.reached, BootStage::kBl0);
  EXPECT_EQ(result.status.code(), ErrorCode::kIntegrityError);
}

TEST(BootChain, FlashTmrSurvivesScatteredUpsets) {
  Staged staged;
  Rng rng(9);
  // Scatter upsets across all three replicas; TMR voting must absorb them
  // (2 MiB devices, 60 flips each -> vanishing double-hit probability).
  for (unsigned replica = 0; replica < 3; ++replica) {
    staged.env.flash.device(replica).inject_bitflips(60, rng);
  }
  const BootResult result = run_boot_chain(staged.env);
  EXPECT_TRUE(result.status.ok()) << result.status.to_string();
  EXPECT_EQ(result.reached, BootStage::kApplication);
}

TEST(BootChain, CorruptedPayloadNeverDeployed) {
  Staged staged;
  // Corrupt the payload image identically in all replicas AND on the
  // SpaceWire host: no clean copy exists anywhere.
  std::vector<std::uint8_t> junk(staged.images[0].size(), 0x5A);
  staged.env.flash.program(staged.list.entries[0].source_offset, junk);
  staged.env.spacewire.host_object("payload", junk);
  const BootResult result = run_boot_chain(staged.env);
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.code(), ErrorCode::kIntegrityError);
  EXPECT_EQ(result.reached, BootStage::kBl1);
  EXPECT_GT(result.report.integrity_retries, 0u);
  // Nothing was written to the destination.
  std::vector<std::uint8_t> ddr(junk.size());
  ASSERT_TRUE(
      staged.env.soc.read_bytes(MemoryMap::kDdrBase + 0x1000, ddr).ok());
  EXPECT_EQ(ddr, std::vector<std::uint8_t>(junk.size(), 0));
}

TEST(BootChain, BitstreamEntryProgramsEfpga) {
  // Full-stack: synthesize a kernel, run the NXmap backend, put the real
  // bitstream in the load list, and let BL1 program the eFPGA.
  hls::FlowOptions options;
  options.top = "f";
  auto flow = hls::run_flow("int f(int a) { return a * 3 + 1; }", options);
  ASSERT_TRUE(flow.ok());
  const nx::NxDevice device = nx::make_device(hls::ng_ultra());
  auto backend = nx::run_backend(flow.value().fsmd.module, device);
  ASSERT_TRUE(backend.ok());

  BootEnvironment env;
  LoadList list;
  LoadEntry bs;
  bs.kind = LoadKind::kBitstream;
  bs.name = "accel";
  LoadEntry bl2;
  bl2.kind = LoadKind::kBl2;
  bl2.name = "bl2";
  bl2.dest_addr = MemoryMap::kDdrBase;
  list.entries = {bs, bl2};
  stage_boot_media(env, pattern_image(4096, 0x11), list,
                   {backend.value().bitstream, pattern_image(1024, 0x33)});

  const BootResult result = run_boot_chain(env);
  EXPECT_TRUE(result.status.ok()) << result.status.to_string();
  EXPECT_TRUE(env.soc.efpga_programmed);
  EXPECT_GT(env.soc.efpga_frames, 0u);
}

TEST(BootChain, MissingBl2EntryStopsAtBl2) {
  BootEnvironment env;
  LoadList list;
  LoadEntry sw;
  sw.kind = LoadKind::kSoftware;
  sw.name = "only_sw";
  sw.dest_addr = MemoryMap::kDdrBase;
  list.entries = {sw};
  stage_boot_media(env, pattern_image(4096, 0x11), list,
                   {pattern_image(512, 0x22)});
  const BootResult result = run_boot_chain(env);
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(result.reached, BootStage::kBl2);
}

// Parameterized: boot succeeds across replica counts and link-noise levels.
struct BootEnvCase {
  unsigned replicas;
  double ber;
  BootSource source;
};

class BootMatrix : public ::testing::TestWithParam<BootEnvCase> {};

TEST_P(BootMatrix, ReachesApplication) {
  const BootEnvCase& c = GetParam();
  Staged staged(c.replicas, c.ber);
  BootOptions options;
  options.bl1_source = c.source;
  options.loadlist_source = c.source;
  const BootResult result = run_boot_chain(staged.env, options);
  EXPECT_TRUE(result.status.ok()) << result.status.to_string();
  EXPECT_EQ(result.reached, BootStage::kApplication);
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, BootMatrix,
    ::testing::Values(BootEnvCase{1, 0.0, BootSource::kFlash},
                      BootEnvCase{3, 0.0, BootSource::kFlash},
                      BootEnvCase{3, 0.0, BootSource::kSpaceWire},
                      BootEnvCase{3, 1e-6, BootSource::kSpaceWire},
                      BootEnvCase{1, 1e-6, BootSource::kSpaceWire}));

}  // namespace
}  // namespace hermes::boot

// Boot-report persistence tests appended as a separate suite.
namespace hermes::boot {
namespace {

TEST(BootReportPersistence, SerializedRoundTrip) {
  BootReport report;
  report.total_cycles = 123456;
  report.flash_corrected_bytes = 7;
  report.spw_crc_errors = 2;
  report.integrity_retries = 1;
  report.steps.push_back({"init_cpu0_regs_caches_exc", true, 500, ""});
  report.steps.push_back({"deploy payload", false, 42, "detail ignored"});
  const auto bytes = report.serialize();
  auto parsed = parse_boot_report(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().total_cycles, 123456u);
  EXPECT_EQ(parsed.value().flash_corrected_bytes, 7u);
  ASSERT_EQ(parsed.value().steps.size(), 2u);
  // Step names are stored in fixed 24-byte fields (23 chars + NUL).
  EXPECT_EQ(parsed.value().steps[0].name, "init_cpu0_regs_caches_e");
  EXPECT_TRUE(parsed.value().steps[0].ok);
  EXPECT_FALSE(parsed.value().steps[1].ok);
  EXPECT_EQ(parsed.value().steps[1].cycles, 42u);
}

TEST(BootReportPersistence, CorruptionDetected) {
  BootReport report;
  report.steps.push_back({"step", true, 1, ""});
  auto bytes = report.serialize();
  bytes[10] ^= 0xFF;
  EXPECT_FALSE(parse_boot_report(bytes).ok());
  EXPECT_FALSE(parse_boot_report({}).ok());
}

TEST(BootReportPersistence, NextStageReadsReportFromDdr) {
  // The paper's requirement: the report is "made available for next-stage
  // software" — read it back from the published DDR address after boot.
  Staged staged;
  const BootResult result = run_boot_chain(staged.env);
  ASSERT_TRUE(result.status.ok());
  std::vector<std::uint8_t> raw(4096);
  ASSERT_TRUE(staged.env.soc.read_bytes(kBootReportAddr, raw).ok());
  auto parsed = parse_boot_report(raw);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().steps.size(), result.report.steps.size());
  EXPECT_GT(parsed.value().total_cycles, 0u);
  // Step names survive (truncated to 23 chars).
  EXPECT_EQ(parsed.value().steps[0].name.substr(0, 9), "init_cpu0");
}

}  // namespace
}  // namespace hermes::boot
