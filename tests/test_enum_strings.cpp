// Exhaustiveness tests for every enum with a to_string(): a new enum value
// added without a name (say, a new ErrorCode or FDIR layer) must fail here
// instead of printing "unknown"/"?" in reports and audit trails. Each enum
// carries a kCount sentinel; the tests walk [0, kCount) and require every
// name to be present and unique.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>

#include "common/status.hpp"
#include "fdir/event.hpp"
#include "fdir/policy.hpp"
#include "fdir/supervisor.hpp"
#include "svc/job.hpp"

namespace hermes {
namespace {

/// Asserts to_string over [0, count) yields no fallback and no duplicates.
template <typename Enum>
void expect_exhaustive_names(std::size_t count, const char* fallback,
                             const char* enum_name) {
  std::set<std::string> seen;
  for (std::size_t value = 0; value < count; ++value) {
    const std::string name = to_string(static_cast<Enum>(value));
    EXPECT_NE(name, fallback)
        << enum_name << " value " << value << " has no name";
    EXPECT_TRUE(seen.insert(name).second)
        << enum_name << " value " << value << " duplicates name " << name;
  }
}

TEST(EnumStrings, ErrorCodeNamesAreExhaustive) {
  expect_exhaustive_names<ErrorCode>(
      static_cast<std::size_t>(ErrorCode::kCount), "unknown", "ErrorCode");
}

TEST(EnumStrings, FdirLayerNamesAreExhaustive) {
  expect_exhaustive_names<fdir::Layer>(
      static_cast<std::size_t>(fdir::Layer::kCount), "?", "fdir::Layer");
  // kNumLayers (the per-layer report array bound) must track the enum.
  EXPECT_EQ(fdir::kNumLayers, static_cast<std::size_t>(fdir::Layer::kCount));
}

TEST(EnumStrings, FdirSeverityNamesAreExhaustive) {
  expect_exhaustive_names<fdir::Severity>(
      static_cast<std::size_t>(fdir::Severity::kCount), "?", "fdir::Severity");
}

TEST(EnumStrings, IsolationActionNamesAreExhaustive) {
  expect_exhaustive_names<fdir::IsolationAction>(
      static_cast<std::size_t>(fdir::IsolationAction::kCount), "?",
      "fdir::IsolationAction");
}

TEST(EnumStrings, FdirModeNamesAreExhaustive) {
  expect_exhaustive_names<fdir::FdirMode>(
      static_cast<std::size_t>(fdir::FdirMode::kCount), "?", "fdir::FdirMode");
}

TEST(EnumStrings, SvcStageNamesAreExhaustive) {
  expect_exhaustive_names<svc::Stage>(
      static_cast<std::size_t>(svc::Stage::kCount), "unknown", "svc::Stage");
}

}  // namespace
}  // namespace hermes
