// Tests for IR lowering, the interpreter golden model, the optimization
// passes and CDFG extraction. Pass correctness is checked semantically: the
// interpreter must produce identical results before and after optimization.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "frontend/parser.hpp"
#include "frontend/typecheck.hpp"
#include "ir/cdfg.hpp"
#include "ir/interp.hpp"
#include "ir/lower.hpp"
#include "ir/passes.hpp"
#include "hls/flow.hpp"
#include "hls/testbench.hpp"

namespace hermes::ir {
namespace {

Function lower_source(std::string_view source, std::string_view top,
                      unsigned unroll = 0) {
  auto program = fe::parse(source);
  EXPECT_TRUE(program.ok()) << program.status().to_string();
  EXPECT_TRUE(fe::typecheck(program.value()).ok());
  LowerOptions options;
  options.unroll_limit = unroll;
  auto fn = lower(program.value(), top, options);
  EXPECT_TRUE(fn.ok()) << fn.status().to_string();
  return fn.take();
}

TEST(Lowering, SimpleExpression) {
  Function fn = lower_source("int f(int a, int b) { return a * b + 1; }", "f");
  EXPECT_TRUE(fn.validate().ok());
  EXPECT_EQ(fn.params.size(), 2u);
  EXPECT_EQ(fn.return_type.bits, 32u);
  Interpreter interp(fn);
  auto result = interp.run(std::vector<std::uint64_t>{6, 7});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().return_value, 43u);
}

TEST(Lowering, ShortCircuitSemantics) {
  // g() stores to out[0]; it must NOT run when the left side decides.
  const char* source = R"(
    int mark(int out[2]) { out[0] = 1; return 1; }
    int f(int a, int out[2]) {
      if (a > 0 && mark(out) > 0) { return 2; }
      return 3;
    }
  )";
  Function fn = lower_source(source, "f");
  // `out` is the only interface array of the top function -> memory 0.
  Interpreter interp(fn);
  interp.set_memory(0, {0, 0});
  auto r = interp.run(std::vector<std::uint64_t>{0});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().return_value, 3u);
  EXPECT_EQ(interp.memory(0)[0], 0u) << "right operand must not have run";

  interp.set_memory(0, {0, 0});
  r = interp.run(std::vector<std::uint64_t>{5});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().return_value, 2u);
  EXPECT_EQ(interp.memory(0)[0], 1u);
}

TEST(Lowering, SignedNarrowingCasts) {
  Function fn = lower_source(
      "int f(int a) { int8_t b = (int8_t)a; return b; }", "f");
  Interpreter interp(fn);
  auto r = interp.run(std::vector<std::uint64_t>{0x180});  // 384 -> -128
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(static_cast<std::int32_t>(r.value().return_value), -128);
}

TEST(Lowering, ParamPassByValue) {
  // Callee mutates its parameter; the caller's variable must not change.
  const char* source = R"(
    int inc(int x) { x = x + 1; return x; }
    int f(int a) { int r = inc(a); return a * 100 + r; }
  )";
  Function fn = lower_source(source, "f");
  Interpreter interp(fn);
  auto r = interp.run(std::vector<std::uint64_t>{5});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().return_value, 506u);
}

TEST(Lowering, NestedLoopsAndBreakContinue) {
  const char* source = R"(
    int f(int n) {
      int acc = 0;
      for (int i = 0; i < n; i = i + 1) {
        if (i == 3) { continue; }
        for (int j = 0; j < n; j = j + 1) {
          if (j > i) { break; }
          acc = acc + 1;
        }
      }
      return acc;
    }
  )";
  Function fn = lower_source(source, "f");
  Interpreter interp(fn);
  auto r = interp.run(std::vector<std::uint64_t>{6});
  ASSERT_TRUE(r.ok());
  // i=0:1, i=1:2, i=2:3, i=3:skip, i=4:5, i=5:6 -> 17
  EXPECT_EQ(r.value().return_value, 17u);
}

TEST(Lowering, UnrollEliminatesBackEdges) {
  const char* source = R"(
    int f(int a[4]) {
      int acc = 0;
      for (int i = 0; i < 4; i = i + 1) { acc = acc + a[i]; }
      return acc;
    }
  )";
  Function rolled = lower_source(source, "f", 0);
  Function unrolled = lower_source(source, "f", 8);
  EXPECT_GT(rolled.num_blocks(), unrolled.num_blocks());
  Interpreter ri(rolled), ui(unrolled);
  ri.set_memory(0, {1, 2, 3, 4});
  ui.set_memory(0, {1, 2, 3, 4});
  EXPECT_EQ(ri.run({}).value().return_value, 10u);
  EXPECT_EQ(ui.run({}).value().return_value, 10u);
}

TEST(Interp, OperationCounts) {
  Function fn = lower_source(
      "int f(int a[8]) { int s = 0; for (int i = 0; i < 8; i = i + 1) "
      "{ s = s + a[i] * a[i]; } return s; }", "f");
  Interpreter interp(fn);
  interp.set_memory(0, {1, 1, 1, 1, 1, 1, 1, 1});
  auto r = interp.run({});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().return_value, 8u);
  EXPECT_GE(r.value().mem_reads, 8u);
  EXPECT_EQ(r.value().multiplies, 8u);
}

TEST(Interp, StepLimitEnforced) {
  Function fn = lower_source("int f() { while (true) { } return 0; }", "f");
  Interpreter interp(fn);
  auto r = interp.run({}, 10'000);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kDeadlineExceeded);
}

TEST(Interp, OutOfBoundsSemantics) {
  // Addresses are truncated to the memory's address width (hardware
  // semantics); indices that still fall outside a non-power-of-two depth
  // read 0 and drop stores — the deterministic UB policy shared with the
  // netlist simulator. Depth 5 -> 3 address bits, so index 6 is OOB.
  const char* source = R"(
    int f(int a[5], int idx) {
      a[idx] = 99;
      return a[idx];
    }
  )";
  Function fn = lower_source(source, "f");
  Interpreter interp(fn);
  interp.set_memory(0, {1, 2, 3, 4, 5});
  auto r = interp.run(std::vector<std::uint64_t>{6});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().return_value, 0u);
  // In-bounds behaviour unchanged.
  r = interp.run(std::vector<std::uint64_t>{2});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().return_value, 99u);
}

// ---- passes: semantic preservation on a corpus of programs ----

struct PassCase {
  const char* name;
  const char* source;
  const char* top;
  std::vector<std::uint64_t> args;
  std::vector<std::vector<std::uint64_t>> memories;  // by memory index
};

class PassPreservation : public ::testing::TestWithParam<PassCase> {};

TEST_P(PassPreservation, OptimizedMatchesUnoptimized) {
  const PassCase& c = GetParam();
  Function baseline = lower_source(c.source, c.top);
  Function optimized = lower_source(c.source, c.top);
  run_pipeline(optimized);
  EXPECT_TRUE(optimized.validate().ok());
  // If-conversion deliberately trades a few extra (speculated) instructions
  // for eliminated control states, so allow modest growth.
  EXPECT_LE(optimized.instr_count(), baseline.instr_count() + 8);

  Interpreter bi(baseline), oi(optimized);
  for (std::size_t m = 0; m < c.memories.size(); ++m) {
    bi.set_memory(m, c.memories[m]);
    oi.set_memory(m, c.memories[m]);
  }
  auto br = bi.run(c.args);
  auto orr = oi.run(c.args);
  ASSERT_TRUE(br.ok());
  ASSERT_TRUE(orr.ok());
  EXPECT_EQ(br.value().return_value, orr.value().return_value);
  for (std::size_t m = 0; m < c.memories.size(); ++m) {
    EXPECT_EQ(bi.memory(m), oi.memory(m)) << "memory " << m;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, PassPreservation,
    ::testing::Values(
        PassCase{"const_fold", "int f() { return (2 + 3) * 4 - 6 / 2; }", "f",
                 {}, {}},
        PassCase{"dead_code",
                 "int f(int a) { int unused = a * 17; int b = a + 1; return b; }",
                 "f", {9}, {}},
        PassCase{"cse",
                 "int f(int a, int b) { return (a * b) + (a * b) + (a * b); }",
                 "f", {12, 13}, {}},
        PassCase{"strength",
                 "uint32_t f(uint32_t a) { return a * 8 + a / 4 + a % 16; }",
                 "f", {1234567}, {}},
        PassCase{"loop_mem",
                 "int f(int a[8]) { int s = 0; for (int i = 0; i < 8; i = i + 1)"
                 " { a[i] = a[i] * 2; s = s + a[i]; } return s; }",
                 "f", {}, {{1, 2, 3, 4, 5, 6, 7, 8}}},
        PassCase{"branchy",
                 "int f(int a) { int r = 0; if (a > 10) { r = a * 2; } else "
                 "{ r = a + 100; } return r + (a > 10 ? 1 : 2); }",
                 "f", {11}, {}},
        PassCase{"shifts",
                 "int f(int a) { return (a << 0) + (a * 1) + (a & 0xFFFFFFFF) "
                 "+ (a | 0) + (a ^ 0); }",
                 "f", {77}, {}}),
    [](const ::testing::TestParamInfo<PassCase>& info) {
      return info.param.name;
    });

TEST(Passes, ConstantFoldCollapsesConstantExpression) {
  Function fn = lower_source("int f() { return 2 * 3 + 4; }", "f");
  run_pipeline(fn);
  // After folding + DCE + CFG simplification only a handful of instructions
  // remain (a const and a ret, possibly a copy).
  EXPECT_LE(fn.instr_count(), 4u);
  Interpreter interp(fn);
  EXPECT_EQ(interp.run({}).value().return_value, 10u);
}

TEST(Passes, DceRemovesUnreadWrites) {
  Function fn = lower_source(
      "int f(int a) { int x = a * 3; int y = a * 5; return y; }", "f");
  const std::size_t before = fn.instr_count();
  dce(fn);
  EXPECT_LT(fn.instr_count(), before);
  Interpreter interp(fn);
  EXPECT_EQ(interp.run(std::vector<std::uint64_t>{4}).value().return_value, 20u);
}

TEST(Passes, StrengthReductionRemovesMulDiv) {
  Function fn = lower_source(
      "uint32_t f(uint32_t a) { return a * 16 + a / 8 + a % 4; }", "f");
  run_pipeline(fn);
  // No multiplies or divides should survive.
  std::size_t muldiv = 0;
  for (BlockId b = 0; b < fn.num_blocks(); ++b) {
    for (const Instr& instr : fn.block(b).instrs) {
      if (instr.op == Op::kMul || instr.op == Op::kDiv || instr.op == Op::kRem) {
        ++muldiv;
      }
    }
  }
  EXPECT_EQ(muldiv, 0u);
  Interpreter interp(fn);
  EXPECT_EQ(interp.run(std::vector<std::uint64_t>{100}).value().return_value,
            100u * 16 + 100 / 8 + 100 % 4);
}

TEST(Passes, MarkRomsDetectsReadOnlyLocals) {
  Function fn = lower_source(
      "int f(int i) { int t[4] = {9, 8, 7, 6}; return t[i & 3]; }", "f");
  run_pipeline(fn);
  bool found_rom = false;
  for (const MemDecl& mem : fn.memories()) {
    if (!mem.is_interface) {
      EXPECT_TRUE(mem.is_rom);
      found_rom = true;
    }
  }
  EXPECT_TRUE(found_rom);
}

TEST(Passes, PipelineIsIdempotent) {
  Function fn = lower_source(
      "int f(int a, int b) { return (a + 0) * (b * 1) + (2 + 3); }", "f");
  run_pipeline(fn);
  const std::size_t after_first = fn.instr_count();
  run_pipeline(fn);
  EXPECT_EQ(fn.instr_count(), after_first);
}

TEST(Cdfg, RawEdgesWithinBlock) {
  Function fn = lower_source("int f(int a) { return (a + 1) * (a + 2); }", "f");
  run_pipeline(fn);
  const CdfgSummary summary = summarize_cdfg(fn);
  EXPECT_GT(summary.data_edges, 0u);
  EXPECT_EQ(summary.blocks, fn.num_blocks());
}

TEST(Cdfg, MemoryOrderingEdges) {
  Function fn = lower_source(
      "void f(int a[4]) { a[0] = 1; int x = a[0]; a[1] = x; }", "f");
  // Find the block containing the store/load/store and check edge kinds.
  bool found_mem_edge = false;
  for (BlockId b = 0; b < fn.num_blocks(); ++b) {
    const BlockCdfg cdfg = build_block_cdfg(fn, b);
    for (const CdfgNode& node : cdfg.nodes) {
      for (const Dep& dep : node.deps) {
        if (dep.kind == DepKind::kMemRaw || dep.kind == DepKind::kMemWar ||
            dep.kind == DepKind::kMemWaw) {
          found_mem_edge = true;
        }
      }
    }
  }
  EXPECT_TRUE(found_mem_edge);
}

TEST(Cdfg, DepsPointBackward) {
  Function fn = lower_source(
      "int f(int a[8]) { int s = 0; for (int i = 0; i < 8; i = i + 1) "
      "{ s = s + a[i]; } return s; }", "f");
  for (BlockId b = 0; b < fn.num_blocks(); ++b) {
    const BlockCdfg cdfg = build_block_cdfg(fn, b);
    for (std::size_t i = 0; i < cdfg.nodes.size(); ++i) {
      for (const Dep& dep : cdfg.nodes[i].deps) {
        EXPECT_LT(dep.on, i);
      }
    }
  }
}

TEST(IrDump, ContainsStructure) {
  Function fn = lower_source("int f(int a) { return a + 1; }", "f");
  const std::string dump = fn.dump();
  EXPECT_NE(dump.find("function f"), std::string::npos);
  EXPECT_NE(dump.find("add"), std::string::npos);
  EXPECT_NE(dump.find("ret"), std::string::npos);
}

// Randomized differential test: random arithmetic expressions evaluated by
// the interpreter before/after the pass pipeline.
TEST(Passes, RandomizedDifferential) {
  Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    // Build a random expression tree as source text.
    std::string expr = "a";
    const char* ops[] = {" + ", " - ", " * ", " & ", " | ", " ^ "};
    for (int depth = 0; depth < 6; ++depth) {
      const char* op = ops[rng.next_below(6)];
      if (rng.next_bool(0.5)) {
        expr = "(" + expr + op + std::to_string(rng.next_below(100)) + ")";
      } else {
        expr = "(b" + std::string(op) + expr + ")";
      }
    }
    const std::string source =
        "int f(int a, int b) { return " + expr + "; }";
    Function baseline = lower_source(source, "f");
    Function optimized = lower_source(source, "f");
    run_pipeline(optimized);
    Interpreter bi(baseline), oi(optimized);
    for (int input = 0; input < 5; ++input) {
      const std::uint64_t a = rng.next_u64() & 0xFFFFFFFF;
      const std::uint64_t b = rng.next_u64() & 0xFFFFFFFF;
      auto br = bi.run(std::vector<std::uint64_t>{a, b});
      auto orr = oi.run(std::vector<std::uint64_t>{a, b});
      ASSERT_TRUE(br.ok());
      ASSERT_TRUE(orr.ok());
      EXPECT_EQ(br.value().return_value, orr.value().return_value)
          << source << " with a=" << a << " b=" << b;
    }
  }
}

}  // namespace
}  // namespace hermes::ir

// If-conversion tests appended as a separate suite.
namespace hermes::ir {
namespace {

Function lower_for_ifconv(std::string_view source, const char* top) {
  auto program = fe::parse(source);
  EXPECT_TRUE(program.ok()) << program.status().to_string();
  EXPECT_TRUE(fe::typecheck(program.value()).ok());
  auto fn = lower(program.value(), top, {});
  EXPECT_TRUE(fn.ok()) << fn.status().to_string();
  return fn.take();
}

std::size_t reachable_blocks(const Function& fn) {
  std::vector<bool> seen(fn.num_blocks(), false);
  std::vector<BlockId> work = {fn.entry};
  seen[fn.entry] = true;
  std::size_t count = 0;
  while (!work.empty()) {
    const BlockId b = work.back();
    work.pop_back();
    ++count;
    const Instr& term = fn.block(b).terminator();
    for (BlockId t : {term.target0, term.target1}) {
      if (t != kNoBlock && !seen[t]) {
        seen[t] = true;
        work.push_back(t);
      }
    }
  }
  return count;
}

TEST(IfConvert, DiamondBecomesSelects) {
  const char* source = R"(
    int f(int a, int b) {
      int r;
      if (a > b) { r = a * 2; } else { r = b + 7; }
      return r;
    }
  )";
  Function fn = lower_for_ifconv(source, "f");
  const std::size_t blocks_before = reachable_blocks(fn);
  const std::size_t converted = if_convert(fn);
  simplify_cfg(fn);
  EXPECT_GE(converted, 1u);
  EXPECT_LT(reachable_blocks(fn), blocks_before);
  EXPECT_TRUE(fn.validate().ok());
  Interpreter interp(fn);
  EXPECT_EQ(interp.run(std::vector<std::uint64_t>{9, 4}).value().return_value, 18u);
  EXPECT_EQ(interp.run(std::vector<std::uint64_t>{4, 9}).value().return_value, 16u);
}

TEST(IfConvert, TriangleWithoutElse) {
  const char* source = R"(
    int f(int a) {
      int r = 5;
      if (a > 0) { r = a; }
      return r + 1;
    }
  )";
  Function fn = lower_for_ifconv(source, "f");
  const std::size_t converted = if_convert(fn);
  EXPECT_GE(converted, 1u);
  EXPECT_TRUE(fn.validate().ok());
  Interpreter interp(fn);
  EXPECT_EQ(interp.run(std::vector<std::uint64_t>{7}).value().return_value, 8u);
  const std::uint64_t neg = 0xFFFFFFFFull;  // -1 as i32
  EXPECT_EQ(interp.run(std::vector<std::uint64_t>{neg}).value().return_value, 6u);
}

TEST(IfConvert, StoresBlockConversion) {
  const char* source = R"(
    void f(int a, int out[4]) {
      if (a > 0) { out[0] = a; }
    }
  )";
  Function fn = lower_for_ifconv(source, "f");
  EXPECT_EQ(if_convert(fn), 0u)
      << "an arm containing a store must not be speculated";
}

TEST(IfConvert, LargeArmsLeftAlone) {
  std::string body;
  for (int i = 0; i < 30; ++i) {
    body += "r = r * 3 + " + std::to_string(i) + ";\n";
  }
  const std::string source =
      "int f(int a) { int r = 1; if (a > 0) { " + body + " } return r; }";
  Function fn = lower_for_ifconv(source, "f");
  EXPECT_EQ(if_convert(fn, 8), 0u);
  // Each source statement lowers to several IR instructions; a generous
  // bound admits the 30-statement arm.
  EXPECT_GE(if_convert(fn, 512), 1u);
}

TEST(IfConvert, ConditionOverwrittenByArm) {
  // The arm overwrites the variable holding the branch condition; the merge
  // selects must still use the original condition value.
  const char* source = R"(
    int f(int a) {
      bool c = a > 10;
      int r = 0;
      if (c) { c = false; r = 1; } else { r = 2; }
      return r + (c ? 10 : 20);
    }
  )";
  Function fn = lower_for_ifconv(source, "f");
  Function reference = lower_for_ifconv(source, "f");
  if_convert(fn);
  simplify_cfg(fn);
  ASSERT_TRUE(fn.validate().ok());
  Interpreter a(fn), b(reference);
  for (std::uint64_t x : {0ull, 5ull, 11ull, 100ull}) {
    EXPECT_EQ(a.run(std::vector<std::uint64_t>{x}).value().return_value,
              b.run(std::vector<std::uint64_t>{x}).value().return_value)
        << "x=" << x;
  }
}

TEST(IfConvert, PipelineDifferentialOnBranchyPrograms) {
  const char* sources[] = {
      "int f(int a, int b) { int r = a; if (a < b) { r = b - a; } else "
      "{ r = a - b; } if (r > 100) { r = 100; } return r; }",
      "int f(int a, int b) { int x = 0; for (int i = 0; i < 8; i = i + 1) "
      "{ if ((a >> i & 1) == 1) { x = x + (b << i); } } return x; }",
      "int f(int a, int b) { return (a > 0 ? a : -a) + (b > 0 ? b : -b); }",
  };
  Rng rng(99);
  for (const char* source : sources) {
    Function optimized = lower_for_ifconv(source, "f");
    Function reference = lower_for_ifconv(source, "f");
    run_pipeline(optimized);
    ASSERT_TRUE(optimized.validate().ok());
    Interpreter a(optimized), b(reference);
    for (int trial = 0; trial < 10; ++trial) {
      const std::uint64_t x = rng.next_u64() & 0xFFFF;
      const std::uint64_t y = rng.next_u64() & 0xFFFF;
      EXPECT_EQ(a.run(std::vector<std::uint64_t>{x, y}).value().return_value,
                b.run(std::vector<std::uint64_t>{x, y}).value().return_value)
          << source << " x=" << x << " y=" << y;
    }
  }
}

TEST(IfConvert, ReducesFsmStatesThroughHls) {
  // End-to-end: the same kernel with/without the middle-end shows fewer
  // FSM states thanks to the eliminated control blocks.
  const char* source = R"(
    int clamp3(int a) {
      int r = a;
      if (r > 100) { r = 100; }
      if (r < -100) { r = -100; }
      if (r == 0) { r = 1; }
      return r;
    }
  )";
  hls::FlowOptions with_opt, without_opt;
  with_opt.top = without_opt.top = "clamp3";
  without_opt.run_middle_end = false;
  auto a = hls::run_flow(source, with_opt);
  auto b = hls::run_flow(source, without_opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LT(a.value().fsm_states, b.value().fsm_states);
  auto ra = hls::cosimulate(a.value(), {250}, {});
  auto rb = hls::cosimulate(b.value(), {250}, {});
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_TRUE(ra.value().match);
  EXPECT_EQ(ra.value().return_value, rb.value().return_value);
  EXPECT_LT(ra.value().hw_cycles, rb.value().hw_cycles);
}

}  // namespace
}  // namespace hermes::ir
