// Tests for the cross-layer FDIR supervisor: the bounded event bus, the
// isolation policy engine, the checkpoint ring, every layer's event
// publication hook, and the end-to-end detect → isolate → recover pipeline
// (quarantine on escalation exhaustion, checkpoint rollback on repeated
// uncorrectable faults, safe mode when the ladder runs out of moves).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "axi/master.hpp"
#include "axi/slave_memory.hpp"
#include "boot/bl.hpp"
#include "dataflow/taskgraph.hpp"
#include "fault/injector.hpp"
#include "fault/scrub_memory.hpp"
#include "fdir/supervisor.hpp"
#include "hv/hypervisor.hpp"
#include "noc/noc.hpp"
#include "noc/workload.hpp"
#include "nxmap/bitstream.hpp"

namespace hermes::fdir {
namespace {

// ---------------------------------------------------------------------------
// Shared fixtures
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> test_bitstream() {
  std::vector<nx::BitstreamFrame> frames(3);
  for (std::size_t f = 0; f < frames.size(); ++f) {
    frames[f].column = static_cast<std::uint32_t>(2 * f);
    for (std::size_t w = 0; w < 6 + f * 3; ++w) {
      frames[f].words.push_back(
          static_cast<std::uint32_t>((f << 24) ^ (w * 0x01000193u) ^ 0xC3));
    }
  }
  return nx::pack_raw_bitstream(/*device_id=*/0xE0E0, frames);
}

/// Boots a full chain with an eFPGA bitstream in the load list, yielding a
/// programmed SoC for checkpoint/rollback scenarios.
void boot_programmed(boot::BootEnvironment& env) {
  std::vector<std::uint8_t> bl1(1024);
  for (std::size_t i = 0; i < bl1.size(); ++i) {
    bl1[i] = static_cast<std::uint8_t>(i * 11 + 3);
  }
  boot::LoadList list;
  boot::LoadEntry fpga;
  fpga.kind = boot::LoadKind::kBitstream;
  fpga.name = "matrix";
  fpga.dest_addr = boot::MemoryMap::kDdrBase + 0x10000;
  list.entries.push_back(fpga);
  boot::LoadEntry app;
  app.kind = boot::LoadKind::kBl2;
  app.name = "app";
  app.dest_addr = boot::MemoryMap::kDdrBase;
  list.entries.push_back(app);
  std::vector<std::vector<std::uint8_t>> images = {
      test_bitstream(), std::vector<std::uint8_t>(2048, 0x5A)};
  boot::stage_boot_media(env, bl1, list, images);
  ASSERT_TRUE(boot::run_boot_chain(env).status.ok());
  ASSERT_TRUE(env.soc.efpga_programmed);
}

FdirEvent make_event(Layer layer, Severity severity,
                     std::uint32_t detail = 0, std::uint64_t stamp = 0) {
  return {layer, severity, ErrorCode::kIntegrityError, detail, stamp};
}

// ---------------------------------------------------------------------------
// FdirBus
// ---------------------------------------------------------------------------

TEST(FdirBus, PreservesArrivalOrder) {
  FdirBus bus(8);
  for (std::uint32_t i = 0; i < 5; ++i) {
    bus.publish(make_event(Layer::kAxi, Severity::kInfo, i, 100 + i));
  }
  EXPECT_EQ(bus.size(), 5u);
  const std::vector<FdirEvent> events = bus.drain();
  ASSERT_EQ(events.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(events[i].detail, i);
    EXPECT_EQ(events[i].stamp, 100u + i);
  }
  EXPECT_EQ(bus.size(), 0u);
  EXPECT_TRUE(bus.drain().empty());
}

TEST(FdirBus, BoundedOverflowDropsAndCounts) {
  FdirBus bus(4);
  EXPECT_EQ(bus.capacity(), 4u);
  for (std::uint32_t i = 0; i < 7; ++i) {
    bus.publish(make_event(Layer::kMemory, Severity::kCorrected, i));
  }
  // The first `capacity` events survive in order; the overflow is counted,
  // never silently lost.
  EXPECT_EQ(bus.size(), 4u);
  EXPECT_EQ(bus.published(), 4u);
  EXPECT_EQ(bus.dropped(), 3u);
  const std::vector<FdirEvent> events = bus.drain();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().detail, 0u);
  EXPECT_EQ(events.back().detail, 3u);
  // Draining frees capacity again.
  bus.publish(make_event(Layer::kMemory, Severity::kCorrected, 9));
  EXPECT_EQ(bus.size(), 1u);
  EXPECT_EQ(bus.dropped(), 3u);
}

// ---------------------------------------------------------------------------
// PolicyEngine
// ---------------------------------------------------------------------------

TEST(Policy, EscalationExhaustedIsolatesImmediately) {
  PolicyEngine policy;
  const auto decisions =
      policy.observe(make_event(Layer::kEfpga, Severity::kExhausted, 2, 77));
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].action, IsolationAction::kQuarantineAccelerator);
  EXPECT_STREQ(decisions[0].rule, "escalation-exhausted");
  EXPECT_EQ(decisions[0].layer, Layer::kEfpga);
  EXPECT_EQ(decisions[0].detail, 2u);
  EXPECT_EQ(decisions[0].stamp, 77u);
}

TEST(Policy, IsolationTargetsMatchTheFailingLayer) {
  PolicyEngine policy;
  const auto act = [&policy](Layer layer) {
    const auto decisions =
        policy.observe(make_event(layer, Severity::kExhausted));
    return decisions.empty() ? IsolationAction::kNone : decisions[0].action;
  };
  EXPECT_EQ(act(Layer::kEfpga), IsolationAction::kQuarantineAccelerator);
  EXPECT_EQ(act(Layer::kBoot), IsolationAction::kQuarantineAccelerator);
  EXPECT_EQ(act(Layer::kHypervisor), IsolationAction::kSuspendPartition);
  EXPECT_EQ(act(Layer::kAxi), IsolationAction::kFenceMemory);
  EXPECT_EQ(act(Layer::kMemory), IsolationAction::kFenceMemory);
  EXPECT_EQ(act(Layer::kDataflow), IsolationAction::kShedDataflow);
  // The supervisor's own layer never isolates anything — no feedback loop.
  EXPECT_EQ(act(Layer::kSupervisor), IsolationAction::kNone);
}

TEST(Policy, RepeatedUncorrectableTriggersRollbackThenRearms) {
  PolicyConfig config;
  config.uncorrectable_threshold = 2;
  PolicyEngine policy(config);
  EXPECT_TRUE(
      policy.observe(make_event(Layer::kMemory, Severity::kUncorrectable))
          .empty());
  auto decisions =
      policy.observe(make_event(Layer::kMemory, Severity::kUncorrectable));
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].action, IsolationAction::kRollback);
  EXPECT_STREQ(decisions[0].rule, "repeated-uncorrectable");
  // The window cleared on trigger: one more uncorrectable does not re-fire;
  // it takes a full threshold's worth again.
  EXPECT_TRUE(
      policy.observe(make_event(Layer::kMemory, Severity::kUncorrectable))
          .empty());
  decisions =
      policy.observe(make_event(Layer::kMemory, Severity::kUncorrectable));
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].action, IsolationAction::kRollback);
}

TEST(Policy, UncorrectableWindowExpiresOldEntries) {
  PolicyConfig config;
  config.window = 4;
  config.uncorrectable_threshold = 2;
  config.rate_threshold = 100;  // keep the rate rule out of this test
  PolicyEngine policy(config);
  EXPECT_TRUE(
      policy.observe(make_event(Layer::kAxi, Severity::kUncorrectable))
          .empty());
  // Four unrelated arrivals push the first entry out of the window.
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(
        policy.observe(make_event(Layer::kDataflow, Severity::kInfo)).empty());
  }
  // This uncorrectable is alone in the (expired) window: no rollback.
  EXPECT_TRUE(
      policy.observe(make_event(Layer::kAxi, Severity::kUncorrectable))
          .empty());
}

TEST(Policy, RateOverWindowIsolatesTheStormingLayer) {
  PolicyConfig config;
  config.window = 16;
  config.rate_threshold = 4;
  config.uncorrectable_threshold = 100;
  PolicyEngine policy(config);
  std::vector<Decision> decisions;
  for (int i = 0; i < 4; ++i) {
    decisions = policy.observe(make_event(Layer::kDataflow, Severity::kRetried));
  }
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].action, IsolationAction::kShedDataflow);
  EXPECT_STREQ(decisions[0].rule, "rate-over-window");
  // Cleared on trigger: the next event alone does not re-fire.
  EXPECT_TRUE(
      policy.observe(make_event(Layer::kDataflow, Severity::kRetried)).empty());
}

// ---------------------------------------------------------------------------
// CheckpointManager
// ---------------------------------------------------------------------------

TEST(Checkpoints, TakeDuringRecoveryRefusesCleanly) {
  boot::BootEnvironment env;
  boot_programmed(env);
  CheckpointManager manager(2);

  // Property (satellite): a checkpoint attempted mid-recovery must refuse
  // cleanly — counted, ring untouched — never freeze a torn state.
  manager.set_recovering(true);
  const Status refused = manager.take(env.soc);
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), ErrorCode::kInvalidArgument);
  EXPECT_TRUE(manager.empty());
  EXPECT_EQ(manager.stats().refused, 1u);
  EXPECT_EQ(manager.stats().taken, 0u);

  // Recovery over: the same SoC checkpoints fine, and the entry restores
  // digest-identical.
  manager.set_recovering(false);
  ASSERT_TRUE(manager.take(env.soc).ok());
  ASSERT_NE(manager.newest(), nullptr);
  const boot::Soc restored = boot::Soc::fork(manager.newest()->snapshot);
  EXPECT_EQ(restored.efpga_config_digest(), manager.newest()->digest);
  EXPECT_EQ(restored.efpga_config_digest(), env.soc.efpga_config_digest());
}

TEST(Checkpoints, ReferenceDigestMismatchRefuses) {
  boot::BootEnvironment env;
  boot_programmed(env);
  CheckpointManager manager(2);
  manager.set_reference_digest(env.soc.efpga_config_digest() ^ 1);
  const Status refused = manager.take(env.soc);
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), ErrorCode::kIntegrityError);
  EXPECT_TRUE(manager.empty());
  manager.set_reference_digest(env.soc.efpga_config_digest());
  EXPECT_TRUE(manager.take(env.soc).ok());
}

TEST(Checkpoints, RingEvictsOldestAndDropsNewest) {
  boot::BootEnvironment env;
  boot_programmed(env);
  CheckpointManager manager(2);
  ASSERT_TRUE(manager.take(env.soc).ok());  // id 0
  ASSERT_TRUE(manager.take(env.soc).ok());  // id 1
  ASSERT_TRUE(manager.take(env.soc).ok());  // id 2, evicts id 0
  EXPECT_EQ(manager.size(), 2u);
  EXPECT_EQ(manager.stats().evicted, 1u);
  ASSERT_NE(manager.newest(), nullptr);
  EXPECT_EQ(manager.newest()->id, 2u);
  manager.drop_newest();
  ASSERT_NE(manager.newest(), nullptr);
  EXPECT_EQ(manager.newest()->id, 1u);
  EXPECT_EQ(manager.stats().dropped, 1u);
  manager.drop_newest();
  EXPECT_TRUE(manager.empty());
  EXPECT_EQ(manager.newest(), nullptr);
}

/// Property sweep (satellite): under injected configuration rot, take() either
/// refuses cleanly (the state can no longer be proven clean) or the taken
/// checkpoint restores digest-identical to what was recorded. Never a torn
/// restore target.
TEST(Checkpoints, PropertyTakeRefusesOrRestoresDigestIdentical) {
  boot::BootEnvironment env;
  boot_programmed(env);
  const boot::SocSnapshot base = env.soc.snapshot();
  const std::uint64_t clean_digest = env.soc.efpga_config_digest();

  fault::FaultPlan rot;
  rot.points.push_back({"efpga.config.rot", {.probability = 0.8}});

  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    fault::FaultInjector injector;
    boot::Soc soc = boot::Soc::fork(base, injector, rot, seed);
    CheckpointManager manager(2);
    manager.set_reference_digest(clean_digest);
    for (int pass = 0; pass < 3; ++pass) (void)soc.scrub_efpga();

    const Status status = manager.take(soc);
    if (status.ok()) {
      ASSERT_NE(manager.newest(), nullptr);
      const boot::Soc restored = boot::Soc::fork(manager.newest()->snapshot);
      EXPECT_EQ(restored.efpga_config_digest(), manager.newest()->digest)
          << "seed " << seed;
      EXPECT_EQ(restored.efpga_config_digest(), clean_digest) << "seed " << seed;
    } else {
      // Clean refusal: a typed status, counters bumped, ring untouched.
      EXPECT_TRUE(status.code() == ErrorCode::kIntegrityError ||
                  status.code() == ErrorCode::kInvalidArgument)
          << "seed " << seed << ": " << status.to_string();
      EXPECT_TRUE(manager.empty()) << "seed " << seed;
      EXPECT_EQ(manager.stats().refused, 1u) << "seed " << seed;
    }
  }
}

// ---------------------------------------------------------------------------
// Satellite regression: bounded-wait budget exhaustion is a deadline
// ---------------------------------------------------------------------------

TEST(BoundedWaitCodes, EfpgaFrameRewriteBudgetExhaustionIsDeadline) {
  fault::FaultPlan plan;
  plan.seed = 3;
  plan.points.push_back({"efpga.prog.frame.corrupt", {.probability = 1.0}});
  fault::FaultInjector injector(plan);
  boot::Soc soc;
  soc.attach_injector(&injector);
  const Status status = soc.program_efpga(test_bitstream());
  ASSERT_FALSE(status.ok());
  // The rewrite budget is a bounded wait; its exhaustion must surface as
  // kDeadlineExceeded (retriable at the next layer up), not a bare kInternal.
  EXPECT_EQ(status.code(), ErrorCode::kDeadlineExceeded);
  EXPECT_TRUE(is_retriable(status.code()));
  EXPECT_FALSE(soc.efpga_programmed);
  EXPECT_GT(soc.efpga_stats().prog_failures, 0u);
}

TEST(BoundedWaitCodes, EfpgaHeaderRewriteBudgetExhaustionIsDeadline) {
  fault::FaultPlan plan;
  plan.seed = 3;
  plan.points.push_back({"efpga.prog.header.corrupt", {.probability = 1.0}});
  fault::FaultInjector injector(plan);
  boot::Soc soc;
  soc.attach_injector(&injector);
  const Status status = soc.program_efpga(test_bitstream());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kDeadlineExceeded);
  EXPECT_FALSE(soc.efpga_programmed);
}

// ---------------------------------------------------------------------------
// Per-layer event publication
// ---------------------------------------------------------------------------

TEST(Publishers, ScrubMemoryPublishesCorrectionsAndUncorrectables) {
  FdirBus bus;
  fault::ScrubMemory memory(32, fault::Protection::kEdac);
  memory.attach_event_bus(&bus);
  for (std::size_t i = 0; i < 32; ++i) {
    memory.write(i, static_cast<std::uint32_t>(i * 0x1111));
  }

  // One flipped bit: corrected in place -> one kCorrected event.
  memory.flip_raw_bit(3, 5);
  (void)memory.scrub_range(0, 32);
  auto events = bus.drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].layer, Layer::kMemory);
  EXPECT_EQ(events[0].severity, Severity::kCorrected);
  EXPECT_EQ(events[0].detail, 1u);
  EXPECT_EQ(events[0].stamp, 0u);  // first scrub pass

  // Two flipped bits in one word: detected-uncorrectable. Without repair the
  // word stays rotten -> kUncorrectable; with golden repair -> kRetried.
  memory.flip_raw_bit(7, 1);
  memory.flip_raw_bit(7, 9);
  (void)memory.scrub_range(0, 32);
  events = bus.drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].severity, Severity::kUncorrectable);
  EXPECT_EQ(events[0].stamp, 1u);
  (void)memory.scrub_range(0, 32, /*repair_uncorrectable=*/true);
  events = bus.drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].severity, Severity::kRetried);
  EXPECT_EQ(events[0].code, ErrorCode::kIntegrityError);
}

TEST(Publishers, AxiMasterPublishesRetriesAndExhaustion) {
  fault::FaultPlan plan;
  plan.seed = 9;
  plan.points.push_back({"axi.r.slverr", {.probability = 1.0}});
  fault::FaultInjector injector(plan);
  axi::AxiSlaveMemory slave(4096, axi::MemoryTiming{});
  slave.attach_injector(&injector);
  FdirBus bus;
  axi::MasterConfig config;
  config.max_retries = 2;
  axi::AxiMaster master(slave, config);
  master.attach_fdir(&bus);

  std::uint8_t out[64];
  const Status status = master.read(0, out);
  ASSERT_FALSE(status.ok());
  const auto events = bus.drain();
  // Every retry rung publishes kRetried; the exhausted budget publishes one
  // terminal kExhausted.
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].severity, Severity::kRetried);
  EXPECT_EQ(events[1].severity, Severity::kRetried);
  EXPECT_EQ(events[2].severity, Severity::kExhausted);
  for (const FdirEvent& event : events) {
    EXPECT_EQ(event.layer, Layer::kAxi);
  }
  // Stamps carry the master's own cycle counter, monotonically.
  EXPECT_LE(events[0].stamp, events[1].stamp);
  EXPECT_LE(events[1].stamp, events[2].stamp);
}

TEST(Publishers, HypervisorPublishesHealthMonitorVerdicts) {
  hv::HvConfig config;
  config.plan.major_frame = 1000;
  config.plan.per_core.assign(hv::kNumCores, {});
  config.plan.per_core[0] = {{0, 900, 0, 0}};
  hv::PartitionConfig guest;
  guest.name = "guest";
  guest.region = {0x0000, 0x1000};
  guest.profile = {1000, 0, 300};
  config.partitions = {guest};
  config.restart_budget = 1;
  config.hm_table[hv::HmEvent::kPartitionError] =
      hv::HmAction::kRestartPartition;

  fault::FaultPlan plan;
  plan.seed = 11;
  plan.points.push_back({"hv.partition.crash", {.probability = 1.0}});
  fault::FaultInjector injector(plan);
  hv::Hypervisor hv(config);
  hv.attach_injector(&injector);
  FdirBus bus;
  hv.attach_fdir(&bus);
  ASSERT_TRUE(hv.run(5000).ok());

  const auto events = bus.drain();
  ASSERT_FALSE(events.empty());
  // Crash-loop escalation: restart(s) within the budget publish kRetried,
  // the suspend escalation publishes kExhausted.
  std::uint64_t retried = 0, exhausted = 0;
  for (const FdirEvent& event : events) {
    EXPECT_EQ(event.layer, Layer::kHypervisor);
    EXPECT_EQ(event.detail, 0u);  // partition id
    if (event.severity == Severity::kRetried) ++retried;
    if (event.severity == Severity::kExhausted) ++exhausted;
  }
  EXPECT_EQ(retried, 1u);    // restart_budget = 1
  EXPECT_GE(exhausted, 1u);  // the escalation past the budget
}

TEST(Publishers, DataflowPublishesNodeRetryLadder) {
  fault::FaultPlan plan;
  plan.seed = 4;
  plan.points.push_back({"df.node.transient", {.probability = 1.0,
                                               .max_fires = 2}});
  fault::FaultInjector injector(plan);
  df::TaskGraph graph;
  const std::size_t a = graph.add_task({"a", 2, 0, 2, 10});
  const std::size_t b = graph.add_task({"b", 3, 0, 2, 10});
  graph.connect(a, b);
  graph.sources = {a};
  graph.sinks = {b};

  FdirBus bus;
  df::DataflowOptions options;
  options.injector = &injector;
  options.fdir = &bus;
  options.retry.max_retries = 3;
  ASSERT_TRUE(df::simulate_dataflow(graph, 4, options).ok());

  const auto events = bus.drain();
  ASSERT_EQ(events.size(), 2u);  // max_fires bounds the transient faults
  for (const FdirEvent& event : events) {
    EXPECT_EQ(event.layer, Layer::kDataflow);
    EXPECT_EQ(event.severity, Severity::kRetried);
  }
}

// ---------------------------------------------------------------------------
// Degraded-mode work shedding
// ---------------------------------------------------------------------------

TEST(Shedding, ShedNonCriticalKeepsTheCriticalPipeline) {
  df::TaskGraph graph;
  df::Task src{"src", 1, 0, 2, 10};
  df::Task work{"work", 3, 0, 4, 50};
  df::Task sink{"sink", 2, 0, 2, 10};
  df::Task diag{"diag", 5, 0, 3, 30};
  diag.critical = false;  // best-effort diagnostics branch
  const std::size_t s = graph.add_task(src);
  const std::size_t w = graph.add_task(work);
  const std::size_t k = graph.add_task(sink);
  const std::size_t d = graph.add_task(diag);
  graph.connect(s, w);
  graph.connect(w, k);
  graph.connect(w, d);  // leaf branch: safe to shed
  graph.sources = {s};
  graph.sinks = {k, d};

  const df::TaskGraph degraded = df::shed_non_critical(graph);
  ASSERT_EQ(degraded.tasks.size(), 3u);
  for (const df::Task& task : degraded.tasks) {
    EXPECT_TRUE(task.critical);
  }
  // Channels touching the shed task are gone; indices are remapped densely.
  ASSERT_EQ(degraded.channels.size(), 2u);
  EXPECT_EQ(degraded.sinks.size(), 1u);
  for (const df::Channel& channel : degraded.channels) {
    EXPECT_LT(channel.from, degraded.tasks.size());
    EXPECT_LT(channel.to, degraded.tasks.size());
  }
  // The degraded graph still runs to completion, and cheaper.
  df::DataflowStats full_stats, degraded_stats;
  df::DataflowOptions options;
  options.stats_out = &full_stats;
  ASSERT_TRUE(df::simulate_dataflow(graph, 6, options).ok());
  options.stats_out = &degraded_stats;
  ASSERT_TRUE(df::simulate_dataflow(degraded, 6, options).ok());
  EXPECT_LE(degraded_stats.makespan, full_stats.makespan);
  EXPECT_LT(degraded_stats.controller_states, full_stats.controller_states);
}

TEST(Shedding, AllCriticalGraphIsUnchanged) {
  df::TaskGraph graph;
  const std::size_t a = graph.add_task({"a", 1, 0, 2, 10});
  const std::size_t b = graph.add_task({"b", 2, 0, 2, 10});
  graph.connect(a, b);
  graph.sources = {a};
  graph.sinks = {b};
  const df::TaskGraph same = df::shed_non_critical(graph);
  EXPECT_EQ(same.tasks.size(), 2u);
  EXPECT_EQ(same.channels.size(), 1u);
  EXPECT_EQ(same.sources, graph.sources);
  EXPECT_EQ(same.sinks, graph.sinks);
}

// ---------------------------------------------------------------------------
// Supervisor: isolation actions
// ---------------------------------------------------------------------------

TEST(Supervisor, ExhaustedEfpgaEventQuarantinesTheAccelerator) {
  FdirBus bus;
  FdirSupervisor supervisor({}, bus);
  bus.publish(make_event(Layer::kEfpga, Severity::kExhausted, 1, 50));
  EXPECT_EQ(supervisor.poll(), 1u);
  EXPECT_TRUE(supervisor.efpga_quarantined());
  EXPECT_EQ(supervisor.mode(), FdirMode::kDegraded);
  const FdirReport& report = supervisor.report();
  EXPECT_EQ(report.quarantines, 1u);
  ASSERT_EQ(report.actions.size(), 1u);
  EXPECT_EQ(report.actions[0].action, IsolationAction::kQuarantineAccelerator);
  EXPECT_TRUE(report.actions[0].ok);
  // Idempotent: a second exhaustion is suppressed, not double-counted.
  bus.publish(make_event(Layer::kEfpga, Severity::kExhausted, 1, 60));
  supervisor.poll();
  EXPECT_EQ(supervisor.report().quarantines, 1u);
  EXPECT_GE(supervisor.report().suppressed, 1u);
}

TEST(Supervisor, ExhaustedHypervisorEventSuspendsThePartition) {
  hv::HvConfig config;
  config.plan.major_frame = 1000;
  config.plan.per_core.assign(hv::kNumCores, {});
  config.plan.per_core[0] = {{0, 400, 0, 0}, {500, 400, 1, 0}};
  hv::PartitionConfig system;
  system.name = "fdir";
  system.region = {0x0000, 0x1000};
  system.system = true;  // the supervisor rides a system partition
  hv::PartitionConfig guest;
  guest.name = "guest";
  guest.region = {0x1000, 0x1000};
  config.partitions = {system, guest};
  hv::Hypervisor hv(config);

  FdirBus bus;
  FdirSupervisor supervisor({}, bus);
  supervisor.attach_hypervisor(&hv, /*system_partition=*/0);

  bus.publish({Layer::kHypervisor, Severity::kExhausted,
               ErrorCode::kDeadlineExceeded, /*detail=*/1, /*stamp=*/400});
  supervisor.poll();
  EXPECT_EQ(hv.partition_state(1), hv::PartitionState::kSuspended);
  EXPECT_EQ(supervisor.report().suspensions, 1u);
  EXPECT_EQ(supervisor.mode(), FdirMode::kDegraded);

  // The system partition itself is never suspended by its own supervisor.
  bus.publish({Layer::kHypervisor, Severity::kExhausted,
               ErrorCode::kDeadlineExceeded, /*detail=*/0, /*stamp=*/500});
  supervisor.poll();
  EXPECT_EQ(hv.partition_state(0), hv::PartitionState::kNormal);
  EXPECT_EQ(supervisor.report().suspensions, 1u);
  EXPECT_GE(supervisor.report().suppressed, 1u);
}

TEST(Supervisor, ExhaustedMemoryEventFencesDdrWrites) {
  boot::BootEnvironment env;
  boot_programmed(env);
  FdirBus bus;
  FdirSupervisor supervisor({}, bus);
  supervisor.attach_soc(&env.soc, nullptr, {});

  const std::uint64_t addr = boot::MemoryMap::kDdrBase + 0x4000;
  const std::uint8_t byte[1] = {0xAB};
  ASSERT_TRUE(env.soc.write_bytes(addr, byte).ok());

  bus.publish(make_event(Layer::kMemory, Severity::kExhausted, 0, 10));
  supervisor.poll();
  EXPECT_TRUE(supervisor.memory_fenced());
  EXPECT_EQ(supervisor.report().fences, 1u);

  // Writes to the fenced DDR now fail cleanly; reads still pass.
  EXPECT_FALSE(env.soc.write_bytes(addr, byte).ok());
  std::uint8_t readback[1] = {0};
  EXPECT_TRUE(env.soc.read_bytes(addr, readback).ok());
  EXPECT_EQ(readback[0], 0xAB);
}

// ---------------------------------------------------------------------------
// Supervisor: NoC containment domains
// ---------------------------------------------------------------------------

/// A two-domain fabric for supervisor isolation scenarios. Local watchdog
/// quarantine is off: isolation decisions are the policy engine's to make.
noc::Crossbar two_domain_fabric(int fault_domain_filter = -1) {
  noc::FabricConfig config;
  config.beat_timeout_cycles = 24;
  config.retry_backoff_cycles = 2;
  config.quarantine_on_watchdog = false;
  config.run_deadline_cycles = 50'000;
  config.fault_domain_filter = fault_domain_filter;
  return noc::Crossbar(config, {{"hv0", 0, 1, 8, /*owner=*/0}},
                       {{"victim", 0}, {"bystander", 1}});
}

std::vector<noc::BeatRequest> beats_to(std::uint32_t endpoint,
                                       std::uint32_t count) {
  std::vector<noc::BeatRequest> beats(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    beats[i] = {i, endpoint, 0x1000ULL * (endpoint + 1) + i};
  }
  return beats;
}

TEST(Supervisor, NocRetryExhaustionQuarantinesOnlyTheFaultedDomain) {
  noc::Crossbar fabric = two_domain_fabric(/*fault_domain_filter=*/0);
  fault::FaultPlan plan;
  plan.seed = 5;
  plan.points.push_back({"noc.beat.drop", {.probability = 1.0}});
  fault::FaultInjector injector(plan);
  fabric.attach_injector(&injector);

  FdirBus bus(4096);
  FdirSupervisor supervisor({}, bus);
  supervisor.attach_noc(&fabric);

  // The victim's lone beat is dropped until its retry budget runs out; one
  // kExhausted event is enough for escalation-exhausted to quarantine the
  // domain but stays under the repeated-uncorrectable rollback threshold
  // (kExhausted outranks kUncorrectable, so each one also accrues there).
  // The bystander domain's traffic is untouched.
  fabric.bind_workload(0, beats_to(0, 1));
  fabric.bind_workload(0, beats_to(1, 6));
  const noc::FabricResult result = fabric.run();
  ASSERT_TRUE(result.status.ok()) << result.status.to_string();
  EXPECT_GT(result.domains[0].failed, 0u);
  EXPECT_EQ(result.domains[1].completed, 6u);

  supervisor.poll();
  EXPECT_TRUE(fabric.domain_quarantined(0));
  EXPECT_FALSE(fabric.domain_quarantined(1));
  EXPECT_EQ(supervisor.mode(), FdirMode::kDegraded);
  EXPECT_GE(supervisor.report().noc_quarantines, 1u);
  bool found = false;
  for (const FdirActionRecord& action : supervisor.report().actions) {
    if (action.action != IsolationAction::kQuarantineNocDomain) continue;
    found = true;
    EXPECT_TRUE(action.ok);
    EXPECT_EQ(action.layer, Layer::kNoc);
    EXPECT_EQ(action.detail, 0u);  // the containment domain
  }
  EXPECT_TRUE(found);
}

TEST(Supervisor, RollbackReadmitsQuarantinedNocDomains) {
  boot::BootEnvironment env;
  boot_programmed(env);
  fault::FaultPlan rot;
  rot.seed = 33;
  rot.points.push_back({"efpga.config.rot", {.probability = 1.0}});
  fault::FaultInjector injector(rot);
  env.soc.attach_injector(&injector);

  FdirBus bus(4096);
  FdirConfig config;
  config.max_restart_attempts = 0;
  FdirSupervisor supervisor(config, bus);
  supervisor.attach_soc(&env.soc, &injector, rot);
  ASSERT_TRUE(supervisor.checkpoint().ok());

  noc::Crossbar fabric = two_domain_fabric();
  supervisor.attach_noc(&fabric);
  fabric.quarantine_domain(0);  // isolated during an earlier fault episode

  for (int pass = 0; pass < 32 && supervisor.report().rollbacks == 0; ++pass) {
    (void)env.soc.scrub_efpga();
    supervisor.poll();
  }
  ASSERT_EQ(supervisor.report().rollbacks, 1u) << supervisor.report().render();
  // The rollback restored pre-fault state: the quarantined domain rides along.
  EXPECT_EQ(supervisor.report().noc_readmissions, 1u);
  EXPECT_FALSE(fabric.domain_quarantined(0));

  fabric.bind_workload(0, beats_to(0, 4));
  const noc::FabricResult result = fabric.run();
  ASSERT_TRUE(result.status.ok()) << result.status.to_string();
  EXPECT_EQ(result.domains[0].completed, 4u);
}

TEST(Supervisor, SafeModeParksTheWholeFabric) {
  FdirBus bus(1024);
  FdirSupervisor supervisor({}, bus);
  noc::Crossbar fabric = two_domain_fabric();
  supervisor.attach_noc(&fabric);

  // Repeated uncorrectables with no SoC to restart or roll back: the ladder
  // lands in safe mode, which parks every containment domain.
  bus.publish(make_event(Layer::kMemory, Severity::kUncorrectable, 0, 10));
  bus.publish(make_event(Layer::kMemory, Severity::kUncorrectable, 0, 20));
  supervisor.poll();
  ASSERT_EQ(supervisor.mode(), FdirMode::kSafe);
  for (unsigned domain = 0; domain < fabric.num_domains(); ++domain) {
    EXPECT_TRUE(fabric.domain_quarantined(domain)) << "domain " << domain;
  }
}

TEST(Supervisor, SuspendedPartitionPortsAreMasked) {
  hv::HvConfig config;
  config.plan.major_frame = 1000;
  config.plan.per_core.assign(hv::kNumCores, {});
  config.plan.per_core[0] = {{0, 400, 0, 0}, {500, 400, 1, 0}};
  hv::PartitionConfig system;
  system.name = "fdir";
  system.region = {0x0000, 0x1000};
  system.system = true;
  hv::PartitionConfig guest;
  guest.name = "guest";
  guest.region = {0x1000, 0x1000};
  config.partitions = {system, guest};
  hv::Hypervisor hv(config);

  FdirBus bus(1024);
  FdirSupervisor supervisor({}, bus);
  supervisor.attach_hypervisor(&hv, /*system_partition=*/0);
  noc::FabricConfig fabric_config;
  noc::Crossbar fabric(fabric_config,
                       {{"sys", 0, 1, 8, /*owner=*/0},
                        {"guest", 0, 1, 8, /*owner=*/1}},
                       {{"e0"}});
  supervisor.attach_noc(&fabric);

  bus.publish({Layer::kHypervisor, Severity::kExhausted,
               ErrorCode::kDeadlineExceeded, /*detail=*/1, /*stamp=*/400});
  supervisor.poll();
  ASSERT_EQ(hv.partition_state(1), hv::PartitionState::kSuspended);

  // The suspended partition's port rejects cleanly; the system port flows.
  fabric.bind_workload(0, beats_to(0, 5));
  fabric.bind_workload(1, beats_to(0, 5));
  const noc::FabricResult result = fabric.run();
  ASSERT_TRUE(result.status.ok()) << result.status.to_string();
  EXPECT_EQ(result.ports[0].completed, 5u);
  EXPECT_EQ(result.ports[1].completed, 0u);
  EXPECT_EQ(result.ports[1].rejected_masked, 5u);
}

// ---------------------------------------------------------------------------
// Supervisor: the recovery ladder end to end
// ---------------------------------------------------------------------------

/// The acceptance demo: a sustained unrecoverable configuration fault is
/// detected through the event bus, the policy engine orders a rollback, and
/// the supervisor restores the checkpointed SoC digest-identical.
TEST(Supervisor, EndToEndDetectIsolateRollback) {
  boot::BootEnvironment env;
  boot_programmed(env);
  const std::uint64_t clean_digest = env.soc.efpga_config_digest();

  fault::FaultPlan rot;
  rot.seed = 21;
  rot.points.push_back({"efpga.config.rot", {.probability = 1.0}});
  fault::FaultInjector injector(rot);
  env.soc.attach_injector(&injector);

  FdirBus bus(1024);
  FdirConfig config;
  config.max_restart_attempts = 0;  // demo the rollback rung specifically
  config.policy.uncorrectable_threshold = 2;
  FdirSupervisor supervisor(config, bus);
  supervisor.attach_soc(&env.soc, &injector, rot);
  ASSERT_TRUE(supervisor.checkpoint().ok());

  // Pound the configuration until the policy orders a rollback. Every rot
  // strike is detected by the scrub (correct, or re-program the frame) and
  // published; repeated uncorrectables cross the policy threshold.
  for (int pass = 0; pass < 32 && supervisor.report().rollbacks == 0; ++pass) {
    (void)env.soc.scrub_efpga();
    supervisor.poll();
  }

  const FdirReport& report = supervisor.report();
  ASSERT_EQ(report.rollbacks, 1u) << report.render();
  EXPECT_EQ(supervisor.mode(), FdirMode::kDegraded);
  // Recover: the restored SoC is digest-identical to the checkpoint.
  EXPECT_EQ(env.soc.efpga_config_digest(), clean_digest);
  EXPECT_EQ(env.soc.efpga_stats().scrub_silent, 0u);
  // Audit: the rollback action names its rule and restore target.
  bool found = false;
  for (const FdirActionRecord& action : report.actions) {
    if (action.action != IsolationAction::kRollback) continue;
    found = true;
    EXPECT_TRUE(action.ok);
    EXPECT_STREQ(action.rule, "repeated-uncorrectable");
    EXPECT_NE(action.checkpoint_id, ~0ULL);
  }
  EXPECT_TRUE(found);
  // The injector was re-armed deterministically: the restored system keeps
  // running under injection without touching the old exhausted streams.
  (void)env.soc.scrub_efpga();
  supervisor.poll();
  EXPECT_EQ(env.soc.efpga_stats().scrub_silent, 0u);
}

TEST(Supervisor, RestartRungHealsInPlaceWithoutRollback) {
  boot::BootEnvironment env;
  boot_programmed(env);
  FdirBus bus(1024);
  FdirConfig config;
  config.max_restart_attempts = 1;
  FdirSupervisor supervisor(config, bus);
  // No injector: the restart scrub runs clean and re-verifies the digest.
  supervisor.attach_soc(&env.soc, nullptr, {});
  ASSERT_TRUE(supervisor.checkpoint().ok());

  // Synthesized repeated-uncorrectable burst (e.g. relayed from a remote
  // monitor): the ladder's first rung suffices.
  bus.publish(make_event(Layer::kEfpga, Severity::kUncorrectable, 0, 10));
  bus.publish(make_event(Layer::kEfpga, Severity::kUncorrectable, 1, 11));
  supervisor.poll();
  const FdirReport& report = supervisor.report();
  EXPECT_EQ(report.restarts, 1u);
  EXPECT_EQ(report.rollbacks, 0u);
  EXPECT_EQ(supervisor.mode(), FdirMode::kDegraded);
  ASSERT_EQ(report.actions.size(), 1u);
  EXPECT_TRUE(report.actions[0].ok);
  EXPECT_EQ(report.actions[0].checkpoint_id, ~0ULL);  // no restore needed
}

TEST(Supervisor, LadderExhaustionEntersSafeModeTerminally) {
  boot::BootEnvironment env;
  boot_programmed(env);
  FdirBus bus(1024);
  FdirConfig config;
  config.max_restart_attempts = 0;
  config.max_rollbacks = 0;   // no rungs left below safe mode
  config.checkpoint_ring = 2;
  FdirSupervisor supervisor(config, bus);
  supervisor.attach_soc(&env.soc, nullptr, {});

  bus.publish(make_event(Layer::kMemory, Severity::kUncorrectable, 0, 1));
  bus.publish(make_event(Layer::kMemory, Severity::kUncorrectable, 0, 2));
  supervisor.poll();
  EXPECT_EQ(supervisor.mode(), FdirMode::kSafe);
  EXPECT_EQ(supervisor.report().safe_mode_entries, 1u);
  EXPECT_TRUE(supervisor.efpga_quarantined());  // safe mode parks the eFPGA

  // Terminal: further decisions are suppressed, counters do not move, and
  // checkpoints are still refused-clean or accepted but no action fires.
  bus.publish(make_event(Layer::kEfpga, Severity::kExhausted, 0, 3));
  bus.publish(make_event(Layer::kDataflow, Severity::kExhausted, 0, 4));
  supervisor.poll();
  EXPECT_EQ(supervisor.mode(), FdirMode::kSafe);
  EXPECT_EQ(supervisor.report().safe_mode_entries, 1u);
  EXPECT_EQ(supervisor.report().quarantines, 0u);
  EXPECT_EQ(supervisor.report().sheds, 0u);
  EXPECT_GE(supervisor.report().suppressed, 2u);
}

TEST(Supervisor, ReportFingerprintIsRunTwiceStable) {
  const auto run_once = [] {
    boot::BootEnvironment env;
    boot_programmed(env);
    fault::FaultPlan rot;
    rot.seed = 33;
    rot.points.push_back({"efpga.config.rot", {.probability = 1.0}});
    fault::FaultInjector injector(rot);
    env.soc.attach_injector(&injector);
    FdirBus bus(1024);
    FdirConfig config;
    config.max_restart_attempts = 0;
    FdirSupervisor supervisor(config, bus);
    supervisor.attach_soc(&env.soc, &injector, rot);
    EXPECT_TRUE(supervisor.checkpoint().ok());
    for (int pass = 0; pass < 12; ++pass) {
      (void)env.soc.scrub_efpga();
      supervisor.poll();
    }
    return supervisor.report().fingerprint();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Supervisor, ReportRendersTheAuditTrail) {
  FdirBus bus;
  FdirSupervisor supervisor({}, bus);
  bus.publish(make_event(Layer::kEfpga, Severity::kExhausted, 1, 50));
  supervisor.poll();
  const std::string text = supervisor.report().render();
  EXPECT_NE(text.find("quarantine_accelerator"), std::string::npos);
  EXPECT_NE(text.find("escalation-exhausted"), std::string::npos);
  EXPECT_NE(text.find("degraded"), std::string::npos);
}

}  // namespace
}  // namespace hermes::fdir
