// Compile-service soak: serial-vs-pooled determinism over a large mixed
// corpus, run twice, plus fault-injection families over the svc.cache.*
// points.
//
// The determinism claim mirrors every other soak in the repo (soak_util.hpp
// style): fingerprint an entire run with FNV over its outcomes, run it again,
// require equality — and additionally require the pooled service to
// fingerprint identically to the serial reference. The fault families then
// assert the integrity invariant under storage rot and eviction storms:
// detected, recompiled, never served.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "soak_util.hpp"
#include "svc/service.hpp"
#include "svc_corpus.hpp"

namespace hermes::svc {
namespace {

constexpr int kJobs = 132;  // >= 128 mixed jobs per run
constexpr std::uint64_t kCorpusSeed = 0x50AC;

hls::SweepConfig small_sweep() {
  hls::SweepConfig sweep;
  sweep.ops = {ir::Op::kAdd, ir::Op::kMul};
  sweep.widths = {8, 32};
  sweep.pipeline_stages = {0, 1};
  sweep.clock_periods_ns = {4.0, 8.0};
  return sweep;
}

ServiceOptions soak_options(unsigned workers) {
  ServiceOptions options;
  options.workers = workers;
  options.sweep = small_sweep();
  return options;
}

std::vector<CompileRequest> soak_corpus() {
  return corpus::mixed_corpus(kJobs, kCorpusSeed, {"alpha", "beta", "gamma"});
}

/// FNV fingerprint over the semantic artifacts of a full run. Stats, cycle
/// charges and dispatch slots are deliberately excluded — hit patterns and
/// dispatch counters differ between passes; artifacts may not.
std::uint64_t artifact_fingerprint(const std::vector<CompileOutcome>& outcomes) {
  std::uint64_t hash = soak::kFnvBasis;
  for (const CompileOutcome& outcome : outcomes) {
    hash = soak::mix(hash, outcome.fingerprint());
    hash = soak::mix(hash, static_cast<std::uint64_t>(outcome.status.code()));
  }
  return hash;
}

/// Artifacts plus the WFQ dispatch order — the serial-vs-pooled contract.
/// Only comparable between FRESH services draining the same submission set
/// (a reused service continues its dispatch counter across drains).
std::uint64_t run_fingerprint(const std::vector<CompileOutcome>& outcomes) {
  std::uint64_t hash = artifact_fingerprint(outcomes);
  for (const CompileOutcome& outcome : outcomes) {
    hash = soak::mix(hash, outcome.dispatch_index);
  }
  return hash;
}

std::vector<CompileOutcome> run_soak(unsigned workers,
                                     fault::FaultInjector* injector = nullptr) {
  ServiceOptions options = soak_options(workers);
  options.injector = injector;
  CompileService service(options);
  service.set_tenant_weight("alpha", 2);
  return service.run(soak_corpus());
}

fault::FaultPlan one_point_plan(std::string point, double probability,
                                std::uint64_t seed) {
  fault::FaultPlan plan;
  plan.seed = seed;
  fault::FaultSchedule schedule;
  schedule.probability = probability;
  plan.points.push_back({std::move(point), schedule});
  return plan;
}

// ---------------------------------------------------------------------------
// Serial vs pooled, run twice
// ---------------------------------------------------------------------------

TEST(SvcSoak, PooledRunsBitIdenticalToSerialRunTwice) {
  const std::vector<CompileOutcome> serial_a = run_soak(0);
  const std::vector<CompileOutcome> serial_b = run_soak(0);
  const std::vector<CompileOutcome> pooled_a = run_soak(4);
  const std::vector<CompileOutcome> pooled_b = run_soak(4);

  const std::uint64_t reference = run_fingerprint(serial_a);
  EXPECT_EQ(run_fingerprint(serial_b), reference) << "serial not repeatable";
  EXPECT_EQ(run_fingerprint(pooled_a), reference) << "pooled diverged";
  EXPECT_EQ(run_fingerprint(pooled_b), reference) << "pooled not repeatable";

  // Per-job drill-down so a divergence names the job, not just the run.
  for (std::size_t i = 0; i < serial_a.size(); ++i) {
    ASSERT_EQ(serial_a[i].fingerprint(), pooled_a[i].fingerprint())
        << "job " << i << " (" << serial_a[i].tenant << ")";
    ASSERT_EQ(serial_a[i].dispatch_index, pooled_a[i].dispatch_index)
        << "job " << i;
    ASSERT_EQ(serial_a[i].bitstream, pooled_a[i].bitstream) << "job " << i;
  }
}

TEST(SvcSoak, WarmSecondPassMatchesAndServesFromCache) {
  CompileService service(soak_options(0));
  const std::vector<CompileOutcome> cold = service.run(soak_corpus());
  service.cache().reset_stats();
  const std::vector<CompileOutcome> warm = service.run(soak_corpus());
  ASSERT_EQ(artifact_fingerprint(warm), artifact_fingerprint(cold));
  const FlowCacheStats stats = service.cache().stats();
  EXPECT_EQ(stats.computes, 0u) << "warm pass recompiled something";
  EXPECT_GT(stats.hits, 0u);
}

// ---------------------------------------------------------------------------
// Fault families over svc.cache.*
// ---------------------------------------------------------------------------

TEST(SvcSoak, RottedEntriesAreDetectedRecompiledNeverServed) {
  // Rot fires on lookups of resident entries (the injector flips bits in
  // the stored image); every detection must recompile and every outcome
  // must still match the uninjected oracle. Serial service: the injector's
  // firing stream is deterministic only single-threaded.
  const std::vector<CompileOutcome> oracle = run_soak(0);

  fault::FaultInjector injector(
      one_point_plan("svc.cache.entry.rot", 0.35, 0xD0D0));
  ServiceOptions options = soak_options(0);
  options.injector = &injector;
  CompileService service(options);
  service.set_tenant_weight("alpha", 2);
  const std::vector<CompileOutcome> rotted = service.run(soak_corpus());
  // Second pass over the same corpus: all-resident lookups, maximum rot
  // exposure.
  const std::vector<CompileOutcome> rotted_warm = service.run(soak_corpus());

  const FlowCacheStats stats = service.cache().stats();
  ASSERT_GT(stats.rot_detected, 0u) << "rot never fired; family is vacuous";
  EXPECT_EQ(stats.rot_served, 0u);
  EXPECT_EQ(run_fingerprint(rotted), run_fingerprint(oracle))
      << "a rotted artifact leaked into an outcome";
  EXPECT_EQ(artifact_fingerprint(rotted_warm), artifact_fingerprint(oracle))
      << "warm pass served a rotted artifact";

  const fault::PointId point = injector.find_point("svc.cache.entry.rot");
  ASSERT_NE(point, fault::kNoFaultPoint);
  EXPECT_EQ(injector.stats(point).fires, stats.rot_detected)
      << "every fired rot must be detected, none silently served";
}

TEST(SvcSoak, EvictionStormsCostOnlyRecompiles) {
  const std::vector<CompileOutcome> oracle = run_soak(0);

  fault::FaultInjector injector(
      one_point_plan("svc.cache.evict.storm", 0.2, 0xACE1));
  ServiceOptions options = soak_options(0);
  options.injector = &injector;
  CompileService service(options);
  service.set_tenant_weight("alpha", 2);
  const std::vector<CompileOutcome> stormed = service.run(soak_corpus());
  const std::vector<CompileOutcome> stormed_warm = service.run(soak_corpus());

  const FlowCacheStats stats = service.cache().stats();
  ASSERT_GT(stats.evict_storms, 0u) << "storm never fired; family is vacuous";
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.rot_served, 0u);
  EXPECT_EQ(run_fingerprint(stormed), run_fingerprint(oracle));
  EXPECT_EQ(artifact_fingerprint(stormed_warm), artifact_fingerprint(oracle))
      << "recompile after storm diverged from the oracle";
}

TEST(SvcSoak, TinyByteBudgetThrashesWithoutCorruption) {
  // Capacity pressure as a standing storm: a budget that can hold only a
  // few artifacts forces constant eviction + recompute, and the outcomes
  // must still be oracle-identical.
  const std::vector<CompileOutcome> oracle = run_soak(0);

  ServiceOptions options = soak_options(0);
  options.cache_bytes = 64 << 10;  // far below the corpus working set
  CompileService service(options);
  service.set_tenant_weight("alpha", 2);
  const std::vector<CompileOutcome> thrashed = service.run(soak_corpus());

  EXPECT_GT(service.cache().stats().evictions, 0u);
  EXPECT_EQ(run_fingerprint(thrashed), run_fingerprint(oracle));
  EXPECT_LE(service.cache().stats().bytes_in_use, std::uint64_t{64 << 10});
}

}  // namespace
}  // namespace hermes::svc
