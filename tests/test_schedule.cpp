// Property tests on the HLS scheduler: for every kernel and constraint
// combination, the produced schedule must satisfy the hazard-separation
// rules documented in hls/schedule.cpp and the resource limits. This is a
// independent re-check of the rules the FSMD generator relies on.
#include <gtest/gtest.h>

#include <map>

#include "apps/kernels.hpp"
#include "frontend/parser.hpp"
#include "frontend/typecheck.hpp"
#include "hls/schedule.hpp"
#include "ir/lower.hpp"
#include "ir/passes.hpp"

namespace hermes::hls {
namespace {

struct ScheduleCase {
  std::string name;
  bool chaining;
  unsigned multipliers;
};

void check_schedule(const ir::Function& function, const TechLibrary& lib,
                    const Constraints& constraints, const Schedule& schedule) {
  ASSERT_EQ(schedule.blocks.size(), function.num_blocks());
  const std::vector<bool> needs_reg = regs_needing_registers(function);

  for (ir::BlockId b = 0; b < function.num_blocks(); ++b) {
    const ir::Block& block = function.block(b);
    const BlockSchedule& bs = schedule.blocks[b];
    ASSERT_EQ(bs.slots.size(), block.instrs.size());
    const ir::BlockCdfg cdfg = ir::build_block_cdfg(function, b);

    std::map<unsigned, unsigned> muls_in_state, divs_in_state;
    std::map<std::pair<std::uint64_t, unsigned>, unsigned> ports_in_state;

    for (std::size_t i = 0; i < block.instrs.size(); ++i) {
      const ir::Instr& instr = block.instrs[i];
      const InstrSlot& slot = bs.slots[i];
      if (slot.is_const_wire) {
        EXPECT_EQ(instr.op, ir::Op::kConst);
        continue;
      }
      // Range containment.
      EXPECT_GE(slot.start, bs.entry_state) << "b" << b << " i" << i;
      EXPECT_LE(slot.end, bs.exit_state) << "b" << b << " i" << i;
      EXPECT_LE(slot.start, slot.end);
      EXPECT_GE(slot.write_state, slot.start);

      // Resource occupancy.
      const FuClass fu = fu_class_of(instr.op);
      if (instr.op == ir::Op::kLoad || instr.op == ir::Op::kStore) {
        ++ports_in_state[{instr.imm, slot.start}];
      } else if (fu == FuClass::kMultiplier && constraints.enforce_resources) {
        for (unsigned s = slot.start; s <= slot.end; ++s) ++muls_in_state[s];
      } else if (fu == FuClass::kDivider && constraints.enforce_resources) {
        for (unsigned s = slot.start; s <= slot.end; ++s) ++divs_in_state[s];
      }

      // Hazard rules against every dependence edge.
      for (const ir::Dep& dep : cdfg.nodes[i].deps) {
        const InstrSlot& p = bs.slots[dep.on];
        const ir::Instr& pi = block.instrs[dep.on];
        if (p.is_const_wire) continue;
        const OpCharacterization pch =
            lib.characterize(pi.op, pi.type.bits, constraints.clock_period_ns);
        const OpCharacterization cch =
            lib.characterize(instr.op, instr.type.bits,
                             constraints.clock_period_ns);
        switch (dep.kind) {
          case ir::DepKind::kRaw: {
            const bool chain_legal = constraints.allow_chaining &&
                                     pch.chain_out && cch.chain_in &&
                                     pi.op != ir::Op::kConst;
            if (chain_legal || pi.op == ir::Op::kConst ||
                pi.op == ir::Op::kCopy) {
              EXPECT_GE(slot.start, p.write_state)
                  << "RAW b" << b << " " << dep.on << "->" << i;
            } else {
              EXPECT_GE(slot.start, p.write_state + 1)
                  << "RAW (no chain) b" << b << " " << dep.on << "->" << i;
            }
            break;
          }
          case ir::DepKind::kWar:
            EXPECT_GE(slot.start, p.end)
                << "WAR b" << b << " " << dep.on << "->" << i;
            break;
          case ir::DepKind::kWaw:
            EXPECT_GE(slot.start, p.write_state + 1)
                << "WAW b" << b << " " << dep.on << "->" << i;
            break;
          case ir::DepKind::kMemRaw:
            EXPECT_GE(slot.start, p.start)
                << "MemRAW b" << b << " " << dep.on << "->" << i;
            break;
          case ir::DepKind::kMemWar:
          case ir::DepKind::kMemWaw:
            EXPECT_GE(slot.start, p.start + 1)
                << "MemWAR/WAW b" << b << " " << dep.on << "->" << i;
            break;
          case ir::DepKind::kControl:
            EXPECT_GE(slot.start, p.end)
                << "Control b" << b << " " << dep.on << "->" << i;
            break;
        }
      }
    }

    if (constraints.enforce_resources) {
      for (const auto& [state, count] : muls_in_state) {
        EXPECT_LE(count, constraints.multipliers) << "state " << state;
      }
      for (const auto& [state, count] : divs_in_state) {
        EXPECT_LE(count, constraints.dividers) << "state " << state;
      }
    }
    for (const auto& [key, count] : ports_in_state) {
      EXPECT_LE(count, 2u) << "memory " << key.first << " state " << key.second;
    }
  }
}

class ScheduleProperties
    : public ::testing::TestWithParam<std::tuple<int, bool, unsigned>> {};

TEST_P(ScheduleProperties, HazardAndResourceRulesHold) {
  const auto [kernel_index, chaining, multipliers] = GetParam();
  static const std::vector<apps::KernelSpec> kernels = apps::all_kernels();
  const apps::KernelSpec& spec = kernels[kernel_index % kernels.size()];

  auto program = fe::parse(spec.source);
  ASSERT_TRUE(program.ok()) << program.status().to_string();
  ASSERT_TRUE(fe::typecheck(program.value()).ok());
  auto lowered = ir::lower(program.value(), spec.name, {});
  ASSERT_TRUE(lowered.ok()) << lowered.status().to_string();
  ir::Function function = lowered.take();
  ir::run_pipeline(function);

  Constraints constraints;
  constraints.allow_chaining = chaining;
  constraints.multipliers = multipliers;
  const TechLibrary lib(ng_ultra());
  auto scheduled = schedule(function, lib, constraints);
  ASSERT_TRUE(scheduled.ok()) << scheduled.status().to_string();
  check_schedule(function, lib, constraints, scheduled.value());
}

INSTANTIATE_TEST_SUITE_P(
    KernelsByOptions, ScheduleProperties,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Bool(),
                       ::testing::Values(1u, 2u)),
    [](const ::testing::TestParamInfo<std::tuple<int, bool, unsigned>>& info) {
      static const std::vector<apps::KernelSpec> kernels = apps::all_kernels();
      return kernels[std::get<0>(info.param) % kernels.size()].name + "_" +
             (std::get<1>(info.param) ? "chain" : "nochain") + "_mul" +
             std::to_string(std::get<2>(info.param));
    });

TEST(ScheduleStates, TighterClockNeedsMoreStates) {
  const apps::KernelSpec spec = apps::fir_kernel();
  auto program = fe::parse(spec.source);
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(fe::typecheck(program.value()).ok());
  auto lowered = ir::lower(program.value(), spec.name, {});
  ASSERT_TRUE(lowered.ok());
  ir::Function function = lowered.take();
  ir::run_pipeline(function);

  const TechLibrary lib(ng_ultra());
  unsigned previous = 0;
  for (double period : {20.0, 10.0, 4.0, 2.0}) {
    Constraints constraints;
    constraints.clock_period_ns = period;
    auto scheduled = schedule(function, lib, constraints);
    ASSERT_TRUE(scheduled.ok());
    EXPECT_GE(scheduled.value().num_states, previous)
        << "period " << period << " ns";
    previous = scheduled.value().num_states;
  }
}

TEST(ScheduleStates, SerialDividerDominatesLatency) {
  auto program = fe::parse("int f(int a, int b) { return a / b; }");
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(fe::typecheck(program.value()).ok());
  auto lowered = ir::lower(program.value(), "f", {});
  ASSERT_TRUE(lowered.ok());
  ir::Function function = lowered.take();
  ir::run_pipeline(function);
  const TechLibrary lib(ng_ultra());
  auto scheduled = schedule(function, lib, {});
  ASSERT_TRUE(scheduled.ok());
  // The iterative 32-bit divider takes ~33 states on its own.
  EXPECT_GE(scheduled.value().num_states, 33u);
}

}  // namespace
}  // namespace hermes::hls
