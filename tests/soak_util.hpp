// Shared soak-test fingerprint vocabulary.
//
// Every run-twice soak family in the repo witnesses determinism the same
// way: FNV-1a accumulation over the 64-bit words of a run's outcome. The
// helper used to be copy-pasted per soak file; this header is the single
// definition, so a family added in one soak cannot drift from the others'
// hashing.
#pragma once

#include <cstdint>

namespace hermes::soak {

/// FNV-1a accumulation over 64-bit words: the outcome fingerprint.
inline std::uint64_t mix(std::uint64_t hash, std::uint64_t value) {
  hash ^= value;
  return hash * 1099511628211ULL;
}

inline constexpr std::uint64_t kFnvBasis = 14695981039346656037ULL;

}  // namespace hermes::soak
