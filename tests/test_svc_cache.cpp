// Differential cache-oracle suite for the compile-service FlowCache.
//
// The central claim under test: a warm cache NEVER changes what a compile
// produces, only what it costs. Every family here compares warm-served
// results byte-for-byte against cold-computed oracles, and the key-derivation
// fuzz asserts the converse — any single-token change to a source or any
// single-field change to the options moves the stage key, so a stale
// artifact can never be addressed by a fresh request.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "svc/service.hpp"
#include "svc_corpus.hpp"

namespace hermes::svc {
namespace {

/// Small characterization grid: the full default sweep is 600 points and
/// only its caching behaviour matters here.
hls::SweepConfig small_sweep() {
  hls::SweepConfig sweep;
  sweep.ops = {ir::Op::kAdd, ir::Op::kMul};
  sweep.widths = {8, 32};
  sweep.pipeline_stages = {0, 1};
  sweep.clock_periods_ns = {4.0, 8.0};
  return sweep;
}

ServiceOptions serial_options() {
  ServiceOptions options;
  options.workers = 0;
  options.sweep = small_sweep();
  return options;
}

// ---------------------------------------------------------------------------
// The differential oracle: warm == cold, byte for byte
// ---------------------------------------------------------------------------

TEST(CacheOracle, WarmRunByteIdenticalToColdOracle) {
  // >= 40 randomized designs; every request's cold oracle comes from a
  // FRESH service (empty cache), the warm result from a shared service's
  // SECOND pass over the corpus, where every stage must be cache-served.
  constexpr int kDesigns = 42;
  const std::vector<CompileRequest> corpus =
      corpus::mixed_corpus(kDesigns, 0xC0FFEE);

  std::vector<CompileOutcome> cold;
  for (const CompileRequest& request : corpus) {
    CompileService fresh(serial_options());
    cold.push_back(fresh.run({request}).front());
    ASSERT_TRUE(cold.back().status.ok())
        << "cold job " << cold.size() - 1 << ": "
        << cold.back().status.to_string();
  }

  CompileService shared(serial_options());
  (void)shared.run(corpus);  // pass 1: populate
  shared.cache().reset_stats();
  const std::vector<CompileOutcome> warm = shared.run(corpus);  // pass 2

  ASSERT_EQ(warm.size(), cold.size());
  for (int i = 0; i < kDesigns; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    EXPECT_EQ(warm[idx].fingerprint(), cold[idx].fingerprint())
        << "design " << i << " diverged warm vs cold";
    EXPECT_EQ(warm[idx].bitstream, cold[idx].bitstream)
        << "design " << i << " bitstream bytes differ";
    EXPECT_EQ(warm[idx].netlist_digest, cold[idx].netlist_digest);
    EXPECT_EQ(warm[idx].fsm_states, cold[idx].fsm_states);
    for (const StageTrace& trace : warm[idx].stages) {
      EXPECT_TRUE(trace.hit) << "design " << i << " stage "
                             << to_string(trace.stage) << " missed on pass 2";
    }
  }
  // Exact accounting: pass 2 was all hits, no computes, no evictions.
  const FlowCacheStats stats = shared.cache().stats();
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.computes, 0u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_GT(stats.hits, 0u);
}

TEST(CacheOracle, WarmHitsCostExactlyOneCycle) {
  const CompileRequest request = corpus::source_request(0);
  CompileService service(serial_options());
  const CompileOutcome first = service.run({request}).front();
  ASSERT_TRUE(first.status.ok());
  const CompileOutcome second = service.run({request}).front();
  ASSERT_TRUE(second.status.ok());
  ASSERT_EQ(second.stages.size(), first.stages.size());
  EXPECT_EQ(second.cycles_charged, second.stages.size() * cost::kHitCycles);
  EXPECT_LT(second.cycles_charged, first.cycles_charged);
}

// ---------------------------------------------------------------------------
// Key-derivation fuzz: any change moves the key, no mutant collides
// ---------------------------------------------------------------------------

TEST(CacheKeys, SourceSingleTokenMutationsMoveScheduleKey) {
  // Mirror of test_jit's SingleCellMutationsNeverCollide at the source
  // level: flip one byte of the C source; the schedule key must change and
  // no two mutants may collide with each other or any base.
  Rng rng(0x5EEDC0DE);
  std::set<std::uint64_t> seen;
  for (int trial = 0; trial < 40; ++trial) {
    const CompileRequest base = corpus::source_request(trial);
    const std::uint64_t base_key = schedule_key(base.source, base.flow);
    seen.insert(base_key);
    for (int mutation = 0; mutation < 4; ++mutation) {
      std::string mutated = base.source;
      const std::size_t pos = rng.next_below(mutated.size());
      mutated[pos] = static_cast<char>(mutated[pos] ^ (1 + rng.next_below(7)));
      const std::uint64_t key = schedule_key(mutated, base.flow);
      EXPECT_NE(key, base_key) << "trial " << trial << " pos " << pos;
      EXPECT_TRUE(seen.insert(key).second)
          << "schedule-key collision at trial " << trial;
    }
  }
}

TEST(CacheKeys, EveryFlowOptionFieldMovesScheduleKey) {
  const std::string source = corpus::kernel_for(1).source;
  const hls::FlowOptions base;
  const std::uint64_t base_key = schedule_key(source, base);

  const auto mutated_key = [&](auto&& mutate) {
    hls::FlowOptions options = base;
    mutate(options);
    return schedule_key(source, options);
  };
  std::set<std::uint64_t> keys = {base_key};
  const auto expect_moves = [&](const char* field, std::uint64_t key) {
    EXPECT_NE(key, base_key) << field << " does not reach the schedule key";
    EXPECT_TRUE(keys.insert(key).second) << field << " collides";
  };

  expect_moves("top", mutated_key([](auto& o) { o.top = "other"; }));
  expect_moves("clock_period", mutated_key([](auto& o) {
                 o.constraints.clock_period_ns += 0.5;
               }));
  expect_moves("multipliers",
               mutated_key([](auto& o) { o.constraints.multipliers += 1; }));
  expect_moves("dividers",
               mutated_key([](auto& o) { o.constraints.dividers += 1; }));
  expect_moves("allow_chaining", mutated_key([](auto& o) {
                 o.constraints.allow_chaining = !o.constraints.allow_chaining;
               }));
  expect_moves("enforce_resources", mutated_key([](auto& o) {
                 o.constraints.enforce_resources =
                     !o.constraints.enforce_resources;
               }));
  expect_moves("merge_registers", mutated_key([](auto& o) {
                 o.constraints.merge_registers = !o.constraints.merge_registers;
               }));
  expect_moves("unroll_limit",
               mutated_key([](auto& o) { o.unroll_limit = 4; }));
  expect_moves("run_middle_end",
               mutated_key([](auto& o) { o.run_middle_end = false; }));
  expect_moves("target.name",
               mutated_key([](auto& o) { o.target.name = "other"; }));
  expect_moves("target.lut_delay",
               mutated_key([](auto& o) { o.target.lut_delay_ns += 0.01; }));
  expect_moves("target.luts", mutated_key([](auto& o) { o.target.luts += 1; }));
}

TEST(CacheKeys, EveryBackendFieldMovesMapKey) {
  const hls::FpgaTarget target = hls::ng_ultra();
  const nx::BackendOptions base;
  constexpr std::uint64_t kDigest = 0xABCDEF12345678ULL;
  const std::uint64_t base_key = map_key(kDigest, target, base);

  const auto mutated_key = [&](auto&& mutate) {
    nx::BackendOptions options = base;
    mutate(options);
    return map_key(kDigest, target, options);
  };
  std::set<std::uint64_t> keys = {base_key};
  const auto expect_moves = [&](const char* field, std::uint64_t key) {
    EXPECT_NE(key, base_key) << field << " does not reach the map key";
    EXPECT_TRUE(keys.insert(key).second) << field << " collides";
  };

  expect_moves("target_period",
               mutated_key([](auto& o) { o.target_period_ns = 7.5; }));
  expect_moves("place.iterations", mutated_key([](auto& o) {
                 o.place.iterations_per_instance += 1;
               }));
  expect_moves("place.initial_temp",
               mutated_key([](auto& o) { o.place.initial_temp += 0.25; }));
  expect_moves("place.cooling",
               mutated_key([](auto& o) { o.place.cooling += 0.01; }));
  expect_moves("place.seed", mutated_key([](auto& o) { o.place.seed += 1; }));
  expect_moves("route.capacity", mutated_key([](auto& o) {
                 o.route.channel_capacity += 0.5;
               }));
  expect_moves("detailed_router",
               mutated_key([](auto& o) { o.detailed_router = true; }));
  expect_moves("detailed.capacity", mutated_key([](auto& o) {
                 o.detailed.channel_capacity += 0.5;
               }));
  expect_moves("detailed.max_iterations", mutated_key([](auto& o) {
                 o.detailed.max_iterations += 1;
               }));
  // The upstream netlist digest is part of the address.
  expect_moves("module_digest", map_key(kDigest ^ 1, target, base));
  // And the target model reaches the map key too.
  hls::FpgaTarget other = target;
  other.routing_delay_ns += 0.01;
  expect_moves("target.routing_delay", map_key(kDigest, other, base));
}

TEST(CacheKeys, EveryTargetFieldMovesCharacterizeKey) {
  const hls::SweepConfig sweep;
  const hls::FpgaTarget base = hls::ng_ultra();
  const std::uint64_t base_key = characterize_key(base, sweep);

  const auto mutated_key = [&](auto&& mutate) {
    hls::FpgaTarget target = base;
    mutate(target);
    return characterize_key(target, sweep);
  };
  std::set<std::uint64_t> keys = {base_key};
  const auto expect_moves = [&](const char* field, std::uint64_t key) {
    EXPECT_NE(key, base_key) << field << " missing from characterize key";
    EXPECT_TRUE(keys.insert(key).second) << field << " collides";
  };

  expect_moves("lut_delay", mutated_key([](auto& t) { t.lut_delay_ns += 0.01; }));
  expect_moves("carry_per_bit",
               mutated_key([](auto& t) { t.carry_per_bit_ns += 0.001; }));
  expect_moves("dsp_delay", mutated_key([](auto& t) { t.dsp_delay_ns += 0.01; }));
  expect_moves("ff_setup", mutated_key([](auto& t) { t.ff_setup_ns += 0.01; }));
  expect_moves("dsp_mul_width",
               mutated_key([](auto& t) { t.dsp_mul_width += 1; }));
  expect_moves("static_power",
               mutated_key([](auto& t) { t.static_power_mw += 1.0; }));

  // The sweep grid is part of the address too.
  hls::SweepConfig wider = sweep;
  wider.widths.push_back(48);
  expect_moves("sweep.widths", characterize_key(base, wider));
}

TEST(CacheKeys, NetlistMutationsMoveMapKey) {
  // The netlist half of the collision fuzz: one structural mutation anywhere
  // in a random module must re-address the map stage.
  Rng rng(0xFEEDFACE);
  const hls::FpgaTarget target = hls::ng_ultra();
  const nx::BackendOptions backend;
  std::set<std::uint64_t> seen;
  for (int trial = 0; trial < 40; ++trial) {
    hw::fuzz::RandomDesign design =
        hw::fuzz::make_random_design(rng, trial, "svckey");
    const std::uint64_t base =
        map_key(design.module.digest(), target, backend);
    EXPECT_TRUE(seen.insert(base).second) << "trial " << trial;
    hw::fuzz::mutate_one_cell(rng, design.module);
    const std::uint64_t mutated =
        map_key(design.module.digest(), target, backend);
    EXPECT_NE(mutated, base) << "trial " << trial;
    EXPECT_TRUE(seen.insert(mutated).second) << "trial " << trial;
  }
}

TEST(CacheKeys, StageDomainsAreDisjoint) {
  // Identical raw inputs must never address entries across stages.
  const std::uint64_t key = 0x1234;
  EXPECT_NE(bitstream_key(key), key);
  const hls::FlowOptions flow;
  const nx::BackendOptions backend;
  EXPECT_NE(schedule_key("x", flow),
            map_key(schedule_key("x", flow), flow.target, backend));
  EXPECT_NE(characterize_key(flow.target, hls::SweepConfig{}),
            schedule_key("", flow));
}

// ---------------------------------------------------------------------------
// FlowCache unit behaviour: stats exactness, LRU, null computes
// ---------------------------------------------------------------------------

std::shared_ptr<const std::string> make_artifact(const std::string& text) {
  return std::make_shared<std::string>(text);
}

std::vector<std::uint8_t> string_image(const std::string& text) {
  return {text.begin(), text.end()};
}

TEST(FlowCacheUnit, HitMissAccountingIsExact) {
  FlowCache cache;
  int computes = 0;
  const auto fetch = [&](std::uint64_t key, const std::string& text) {
    bool hit = false;
    auto value = cache.get_or_compute<std::string>(
        Stage::kMap, key,
        [&]() {
          ++computes;
          return make_artifact(text);
        },
        string_image, &hit);
    return std::make_pair(value, hit);
  };

  auto [first, miss] = fetch(1, "alpha");
  ASSERT_NE(first, nullptr);
  EXPECT_FALSE(miss);
  auto [second, hit] = fetch(1, "never-recomputed");
  EXPECT_TRUE(hit);
  EXPECT_EQ(*second, "alpha");  // served, not recomputed
  EXPECT_EQ(computes, 1);

  const FlowCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.computes, 1u);
  EXPECT_EQ(stats.bytes_in_use, 5u);
  EXPECT_EQ(stats.rot_detected, 0u);
  EXPECT_EQ(stats.rot_served, 0u);
}

TEST(FlowCacheUnit, NullComputeInsertsNothing) {
  FlowCache cache;
  bool hit = true;
  auto value = cache.get_or_compute<std::string>(
      Stage::kSchedule, 7,
      []() -> std::shared_ptr<const std::string> { return nullptr; },
      string_image, &hit);
  EXPECT_EQ(value, nullptr);
  EXPECT_FALSE(hit);
  EXPECT_FALSE(cache.contains(Stage::kSchedule, 7));
  EXPECT_EQ(cache.stats().computes, 0u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().bytes_in_use, 0u);
}

TEST(FlowCacheUnit, ByteBudgetEvictsLeastRecentlyUsed) {
  FlowCache cache(12);  // room for two 5-byte images, not three
  const auto put = [&](std::uint64_t key, const std::string& text) {
    (void)cache.get_or_compute<std::string>(
        Stage::kBitstream, key, [&]() { return make_artifact(text); },
        string_image);
  };
  put(1, "aaaaa");
  put(2, "bbbbb");
  // Touch 1 so 2 becomes the LRU victim.
  bool hit = false;
  (void)cache.get_or_compute<std::string>(
      Stage::kBitstream, 1, [&]() { return make_artifact("x"); }, string_image,
      &hit);
  ASSERT_TRUE(hit);
  put(3, "ccccc");

  EXPECT_TRUE(cache.contains(Stage::kBitstream, 1));
  EXPECT_FALSE(cache.contains(Stage::kBitstream, 2)) << "LRU entry survived";
  EXPECT_TRUE(cache.contains(Stage::kBitstream, 3));
  const FlowCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.bytes_evicted, 5u);
  EXPECT_EQ(stats.bytes_in_use, 10u);
  EXPECT_LE(stats.bytes_in_use, 12u);
}

TEST(FlowCacheUnit, EvictedEntryIsRecomputedIdentically) {
  // Eviction costs a recompute, never correctness: the service-level oracle
  // in miniature.
  FlowCache cache(6);  // one 5-byte image at a time
  int computes = 0;
  const auto fetch = [&](std::uint64_t key, const std::string& text) {
    auto value = cache.get_or_compute<std::string>(
        Stage::kMap, key,
        [&]() {
          ++computes;
          return make_artifact(text);
        },
        string_image);
    return *value;
  };
  EXPECT_EQ(fetch(1, "alpha"), "alpha");
  EXPECT_EQ(fetch(2, "gamma"), "gamma");  // evicts 1
  EXPECT_EQ(fetch(1, "alpha"), "alpha");  // recomputed, same bytes
  EXPECT_EQ(computes, 3);
  EXPECT_GE(cache.stats().evictions, 1u);
}

TEST(FlowCacheUnit, ClearDropsEntriesAndBytes) {
  FlowCache cache;
  (void)cache.get_or_compute<std::string>(
      Stage::kMap, 1, [&]() { return make_artifact("hello"); }, string_image);
  ASSERT_EQ(cache.size(), 1u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().bytes_in_use, 0u);
  EXPECT_FALSE(cache.contains(Stage::kMap, 1));
}

}  // namespace
}  // namespace hermes::svc
