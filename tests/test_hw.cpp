// Tests for the netlist model, cycle-accurate simulator, Verilog emitter and
// VCD tracer.
#include <gtest/gtest.h>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "hls/flow.hpp"
#include "hw/netlist.hpp"
#include "hw/sim.hpp"
#include "hw/vcd.hpp"
#include "hw/verilog.hpp"

namespace hermes::hw {
namespace {

TEST(Netlist, WiresAndPorts) {
  Module m("top");
  const WireId a = m.add_wire(8, "a");
  const WireId b = m.add_wire(1);
  m.add_input(a, "a");
  m.add_output(b, "b");
  EXPECT_EQ(m.wire_width(a), 8u);
  EXPECT_EQ(m.port_wire("a"), a);
  EXPECT_EQ(m.port_wire("nope"), kNoWire);
  EXPECT_TRUE(m.validate().ok());
}

TEST(Netlist, DetectsMultipleDrivers) {
  Module m("bad");
  const WireId a = m.add_wire(8);
  Cell c1;
  c1.kind = CellKind::kConst;
  c1.outputs = {a};
  m.add_cell(c1);
  m.add_cell(c1);  // same output again
  EXPECT_FALSE(m.validate().ok());
}

TEST(Netlist, DetectsBadMuxSelect) {
  Module m("bad");
  const WireId sel = m.add_wire(2);
  const WireId x = m.make_const(0, 8);
  const WireId y = m.make_const(1, 8);
  Cell mux;
  mux.kind = CellKind::kMux;
  mux.inputs = {sel, x, y};
  mux.outputs = {m.add_wire(8)};
  m.add_cell(mux);
  EXPECT_FALSE(m.validate().ok());
}

TEST(Netlist, StatsCounting) {
  Module m("stats");
  const WireId a = m.make_const(1, 32);
  const WireId b = m.make_const(2, 32);
  m.make_binop(CellKind::kAdd, a, b, 32);
  m.make_binop(CellKind::kMul, a, b, 32);
  m.make_binop(CellKind::kDivU, a, b, 32);
  const WireId en = m.make_const(1, 1);
  m.make_register(a, en, 0);
  Memory mem;
  mem.width = 16;
  mem.depth = 32;
  mem.name = "buf";
  m.add_memory(mem);
  const NetlistStats stats = m.stats();
  EXPECT_EQ(stats.arithmetic, 3u);
  EXPECT_EQ(stats.multipliers, 1u);
  EXPECT_EQ(stats.dividers, 1u);
  EXPECT_EQ(stats.registers, 1u);
  EXPECT_EQ(stats.register_bits, 32u);
  EXPECT_EQ(stats.memory_bits, 512u);
}

// ---- simulator semantics, parameterized over operators ----

struct OpCase {
  CellKind kind;
  unsigned width;
  std::uint64_t a, b, expect;
};

class SimBinop : public ::testing::TestWithParam<OpCase> {};

TEST_P(SimBinop, Evaluates) {
  const OpCase& c = GetParam();
  Module m("op");
  const WireId a = m.add_wire(c.width, "a");
  const WireId b = m.add_wire(c.width, "b");
  m.add_input(a, "a");
  m.add_input(b, "b");
  const unsigned out_width =
      (c.kind == CellKind::kEq || c.kind == CellKind::kNe ||
       c.kind == CellKind::kLtU || c.kind == CellKind::kLtS ||
       c.kind == CellKind::kLeU || c.kind == CellKind::kLeS)
          ? 1
          : c.width;
  const WireId out = m.make_binop(c.kind, a, b, out_width, "out");
  m.add_output(out, "out");
  Simulator sim(m);
  ASSERT_TRUE(sim.status().ok());
  sim.set_input("a", c.a);
  sim.set_input("b", c.b);
  sim.eval_comb();
  EXPECT_EQ(sim.get_output("out"), c.expect)
      << to_string(c.kind) << " w" << c.width;
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, SimBinop,
    ::testing::Values(
        OpCase{CellKind::kAdd, 8, 200, 100, 44},       // wraps at 8 bits
        OpCase{CellKind::kSub, 8, 10, 20, 246},        // wraps negative
        OpCase{CellKind::kMul, 16, 300, 300, 90000 & 0xFFFF},
        OpCase{CellKind::kDivU, 32, 100, 7, 14},
        OpCase{CellKind::kDivU, 32, 100, 0, 0xFFFFFFFFull},  // div-by-zero
        OpCase{CellKind::kDivS, 8, 0xF0, 3, 0xFBu},    // -16/3 = -5 -> 0xFB
        OpCase{CellKind::kRemU, 32, 100, 7, 2},
        OpCase{CellKind::kRemU, 32, 100, 0, 100},      // rem-by-zero
        OpCase{CellKind::kRemS, 8, 0xF0, 7, 0xFEu}));  // -16%7 = -2

INSTANTIATE_TEST_SUITE_P(
    Logic, SimBinop,
    ::testing::Values(OpCase{CellKind::kAnd, 8, 0xF0, 0x3C, 0x30},
                      OpCase{CellKind::kOr, 8, 0xF0, 0x0C, 0xFC},
                      OpCase{CellKind::kXor, 8, 0xFF, 0x0F, 0xF0},
                      OpCase{CellKind::kShl, 16, 0x00FF, 4, 0x0FF0},
                      OpCase{CellKind::kShrU, 16, 0x8000, 15, 0x0001},
                      OpCase{CellKind::kShrS, 8, 0x80, 3, 0xF0}));

INSTANTIATE_TEST_SUITE_P(
    Compare, SimBinop,
    ::testing::Values(OpCase{CellKind::kEq, 32, 5, 5, 1},
                      OpCase{CellKind::kNe, 32, 5, 6, 1},
                      OpCase{CellKind::kLtU, 8, 0x80, 0x7F, 0},   // unsigned
                      OpCase{CellKind::kLtS, 8, 0x80, 0x7F, 1},   // signed
                      OpCase{CellKind::kLeU, 8, 7, 7, 1},
                      OpCase{CellKind::kLeS, 8, 0xFF, 0, 1}));    // -1 <= 0

TEST(Sim, RegisterHoldsAndEnables) {
  Module m("reg");
  const WireId d = m.add_wire(8, "d");
  const WireId en = m.add_wire(1, "en");
  m.add_input(d, "d");
  m.add_input(en, "en");
  const WireId q = m.make_register(d, en, 0x55, "q");
  m.add_output(q, "q");
  Simulator sim(m);
  ASSERT_TRUE(sim.status().ok());
  EXPECT_EQ(sim.get_output("q"), 0x55u);  // reset value
  sim.set_input("d", 0xAA);
  sim.set_input("en", 0);
  sim.step();
  EXPECT_EQ(sim.get_output("q"), 0x55u);  // enable low: held
  sim.set_input("en", 1);
  sim.step();
  EXPECT_EQ(sim.get_output("q"), 0xAAu);  // captured
  sim.set_input("d", 0x11);
  sim.set_input("en", 0);
  sim.step();
  EXPECT_EQ(sim.get_output("q"), 0xAAu);  // held again
}

TEST(Sim, SyncRamReadWriteFirstSemantics) {
  Module m("ram");
  Memory mem;
  mem.name = "buf";
  mem.width = 16;
  mem.depth = 8;
  const std::size_t mi = m.add_memory(mem);
  const WireId addr = m.add_wire(3, "addr");
  const WireId data = m.add_wire(16, "data");
  const WireId wen = m.add_wire(1, "wen");
  const WireId ren = m.add_wire(1, "ren");
  m.add_input(addr, "addr");
  m.add_input(data, "data");
  m.add_input(wen, "wen");
  m.add_input(ren, "ren");
  const WireId rdata = m.make_ram_read(mi, addr, ren, "rdata");
  m.make_ram_write(mi, addr, data, wen);
  m.add_output(rdata, "rdata");

  Simulator sim(m);
  ASSERT_TRUE(sim.status().ok());
  // Simultaneous read+write to the same address: write-first.
  sim.set_input("addr", 3);
  sim.set_input("data", 0xBEEF);
  sim.set_input("wen", 1);
  sim.set_input("ren", 1);
  sim.step();
  EXPECT_EQ(sim.get_output("rdata"), 0xBEEFu);
  EXPECT_EQ(sim.read_memory(mi, 3), 0xBEEFu);
  // Read-only on another address.
  sim.write_memory(mi, 5, 0x1234);
  sim.set_input("addr", 5);
  sim.set_input("wen", 0);
  sim.step();
  EXPECT_EQ(sim.get_output("rdata"), 0x1234u);
  // Disabled read holds the old value.
  sim.set_input("addr", 3);
  sim.set_input("ren", 0);
  sim.step();
  EXPECT_EQ(sim.get_output("rdata"), 0x1234u);
}

TEST(Sim, MemoryInitImage) {
  Module m("rom");
  Memory mem;
  mem.name = "table";
  mem.width = 8;
  mem.depth = 4;
  mem.init = {10, 20, 30, 40};
  const std::size_t mi = m.add_memory(mem);
  const WireId addr = m.add_wire(2, "addr");
  m.add_input(addr, "addr");
  const WireId one = m.make_const(1, 1);
  const WireId rdata = m.make_ram_read(mi, addr, one, "rdata");
  m.add_output(rdata, "rdata");
  Simulator sim(m);
  ASSERT_TRUE(sim.status().ok());
  for (std::uint64_t i = 0; i < 4; ++i) {
    sim.set_input("addr", i);
    sim.step();
    EXPECT_EQ(sim.get_output("rdata"), (i + 1) * 10);
  }
}

TEST(Sim, DetectsCombinationalLoop) {
  Module m("loop");
  const WireId a = m.add_wire(1, "a");
  const WireId b = m.add_wire(1, "b");
  // a = not b; b = not a  -> loop.
  Cell n1;
  n1.kind = CellKind::kNot;
  n1.inputs = {b};
  n1.outputs = {a};
  m.add_cell(n1);
  Cell n2;
  n2.kind = CellKind::kNot;
  n2.inputs = {a};
  n2.outputs = {b};
  m.add_cell(n2);
  Simulator sim(m);
  EXPECT_FALSE(sim.status().ok());
  EXPECT_EQ(sim.status().code(), ErrorCode::kInternal);
}

TEST(Sim, RunUntilTimesOut) {
  Module m("never");
  const WireId never = m.make_const(0, 1, "done");
  m.add_output(never, "done");
  Simulator sim(m);
  ASSERT_TRUE(sim.status().ok());
  auto result = sim.run_until("done", 100);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kDeadlineExceeded);
}

TEST(Sim, CounterCircuit) {
  // 4-bit counter: q <= q + 1 each cycle; wraps at 16.
  Module m("counter");
  const WireId one1 = m.make_const(1, 1);
  const WireId d_placeholder = m.add_wire(4, "d");
  const WireId q = m.make_register(d_placeholder, one1, 0, "q");
  const WireId one4 = m.make_const(1, 4);
  Cell add;
  add.kind = CellKind::kAdd;
  add.inputs = {q, one4};
  add.outputs = {d_placeholder};
  m.add_cell(add);
  m.add_output(q, "q");
  Simulator sim(m);
  ASSERT_TRUE(sim.status().ok());
  for (std::uint64_t i = 0; i < 40; ++i) {
    EXPECT_EQ(sim.get_output("q"), i % 16);
    sim.step();
  }
  EXPECT_EQ(sim.cycles(), 40u);
}

TEST(Sim, SliceConcatZextSext) {
  Module m("bits");
  const WireId in = m.add_wire(16, "in");
  m.add_input(in, "in");
  const WireId hi = m.make_slice(in, 8, 8, "hi");
  const WireId lo = m.make_slice(in, 0, 8, "lo");
  const WireId swapped = m.make_concat({hi, lo}, "swapped");
  const WireId extended = m.make_sext(lo, 16, "sext");
  const WireId zext = m.make_zext(lo, 16, "zext");
  m.add_output(swapped, "swapped");
  m.add_output(extended, "sext");
  m.add_output(zext, "zext");
  Simulator sim(m);
  ASSERT_TRUE(sim.status().ok());
  sim.set_input("in", 0x12F0);
  sim.eval_comb();
  EXPECT_EQ(sim.get_output("swapped"), 0xF012u);
  EXPECT_EQ(sim.get_output("sext"), 0xFFF0u);
  EXPECT_EQ(sim.get_output("zext"), 0x00F0u);
}

TEST(Verilog, EmitsStructuralElements) {
  Module m("accel");
  const WireId a = m.add_wire(32, "a");
  m.add_input(a, "a");
  const WireId c = m.make_const(7, 32);
  const WireId sum = m.make_binop(CellKind::kAdd, a, c, 32, "sum");
  const WireId en = m.make_const(1, 1);
  const WireId q = m.make_register(sum, en, 0, "q");
  m.add_output(q, "result");
  Memory mem;
  mem.name = "scratch";
  mem.width = 32;
  mem.depth = 16;
  mem.dual_port = true;
  m.add_memory(mem);

  const std::string verilog = emit_verilog(m);
  EXPECT_NE(verilog.find("module accel("), std::string::npos);
  EXPECT_NE(verilog.find("input wire clk"), std::string::npos);
  EXPECT_NE(verilog.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(verilog.find("True Dual-Port RAM"), std::string::npos);
  EXPECT_NE(verilog.find("endmodule"), std::string::npos);
}

TEST(Vcd, RecordsChanges) {
  Module m("counter");
  const WireId one = m.make_const(1, 1);
  const WireId d = m.add_wire(4, "d");
  const WireId q = m.make_register(d, one, 0, "q");
  const WireId inc = m.make_const(1, 4);
  Cell add;
  add.kind = CellKind::kAdd;
  add.inputs = {q, inc};
  add.outputs = {d};
  m.add_cell(add);
  m.add_output(q, "q");
  Simulator sim(m);
  ASSERT_TRUE(sim.status().ok());
  VcdTrace trace(m, {q});
  for (int i = 0; i < 4; ++i) {
    trace.sample(sim);
    sim.step();
  }
  const std::string vcd = trace.str();
  EXPECT_NE(vcd.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(vcd.find("#0"), std::string::npos);
  EXPECT_NE(vcd.find("b0011"), std::string::npos);  // q reaches 3
}

// Randomized property: simulator addition matches 64-bit reference under
// truncation, across widths.
class SimWidthSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(SimWidthSweep, AddMatchesReference) {
  const unsigned width = GetParam();
  Module m("w");
  const WireId a = m.add_wire(width, "a");
  const WireId b = m.add_wire(width, "b");
  m.add_input(a, "a");
  m.add_input(b, "b");
  const WireId out = m.make_binop(CellKind::kAdd, a, b, width, "out");
  m.add_output(out, "out");
  Simulator sim(m);
  ASSERT_TRUE(sim.status().ok());
  Rng rng(width);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t x = rng.next_u64();
    const std::uint64_t y = rng.next_u64();
    sim.set_input("a", x);
    sim.set_input("b", y);
    sim.eval_comb();
    EXPECT_EQ(sim.get_output("out"),
              truncate(truncate(x, width) + truncate(y, width), width));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, SimWidthSweep,
                         ::testing::Values(1u, 7u, 8u, 16u, 24u, 32u, 48u, 64u));

}  // namespace
}  // namespace hermes::hw

// Dead-cell sweep tests appended as a separate suite.
namespace hermes::hw {
namespace {

TEST(SweepDeadCells, RemovesUnusedLogicTransitively) {
  Module m("sweep");
  const WireId a = m.add_wire(8, "a");
  m.add_input(a, "a");
  // Live path: out = a + 1.
  const WireId one = m.make_const(1, 8);
  const WireId live = m.make_binop(CellKind::kAdd, a, one, 8, "live");
  m.add_output(live, "out");
  // Dead chain: d2 consumes d1; nothing consumes d2 -> both go, and the
  // const feeding only them goes on the second sweep iteration.
  const WireId c = m.make_const(7, 8);
  const WireId d1 = m.make_binop(CellKind::kXor, a, c, 8, "d1");
  m.make_binop(CellKind::kAnd, d1, c, 8, "d2");
  // Dead register (and the enable const that only it uses).
  const WireId en = m.make_const(1, 1, "dead_en");
  m.make_register(a, en, 0, "dead_reg");

  const std::size_t before = m.cells().size();
  const std::size_t removed = sweep_dead_cells(m);
  EXPECT_EQ(removed, 5u);
  EXPECT_EQ(m.cells().size(), before - removed);
  EXPECT_TRUE(m.validate().ok());

  Simulator sim(m);
  ASSERT_TRUE(sim.status().ok());
  sim.set_input("a", 41);
  sim.eval_comb();
  EXPECT_EQ(sim.get_output("out"), 42u);
}

TEST(SweepDeadCells, KeepsRamWritesAndTheirCone) {
  Module m("ramkeep");
  Memory mem;
  mem.name = "buf";
  mem.width = 8;
  mem.depth = 4;
  const std::size_t mi = m.add_memory(mem);
  const WireId addr = m.make_const(2, 2);
  const WireId data = m.make_const(0xAB, 8);
  const WireId en = m.make_const(1, 1);
  m.make_ram_write(mi, addr, data, en);
  EXPECT_EQ(sweep_dead_cells(m), 0u) << "stores and their operands are live";
  Simulator sim(m);
  sim.step();
  EXPECT_EQ(sim.read_memory(mi, 2), 0xABu);
}

TEST(SweepDeadCells, NoOpOnFullyLiveNetlist) {
  Module m("live");
  const WireId a = m.add_wire(4, "a");
  m.add_input(a, "a");
  const WireId one = m.make_const(1, 1);
  const WireId q = m.make_register(a, one, 0, "q");
  m.add_output(q, "q");
  EXPECT_EQ(sweep_dead_cells(m), 0u);
}

TEST(SweepDeadCells, HlsOutputShrinksButStaysCorrect) {
  hls::FlowOptions options;
  options.top = "f";
  auto flow = hls::run_flow(
      "int f(int a, int b) { return a * 2 + b / 3; }", options);
  ASSERT_TRUE(flow.ok());
  hw::Module module = flow.value().fsmd.module;  // copy to mutate
  sweep_dead_cells(module);
  EXPECT_TRUE(module.validate().ok());
  Simulator sim(module);
  ASSERT_TRUE(sim.status().ok());
  sim.set_input("arg_a", 10);
  sim.set_input("arg_b", 9);
  sim.set_input("start", 1);
  auto cycles = sim.run_until("done", 100'000);
  ASSERT_TRUE(cycles.ok());
  EXPECT_EQ(sim.get_output("return_value"), 23u);
}

}  // namespace
}  // namespace hermes::hw
