// Tests for the fault-contained multi-accelerator interconnect: delivery and
// determinism, QoS arbitration (priority, weighted round-robin, starvation
// promotion), credit flow control, the noc.* fault points and their recovery
// ladders, the containment property (a fault confined to one domain never
// moves another domain's digest or counters), and the campaign runner's
// serial-vs-pooled bit-identity.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/threadpool.hpp"
#include "fault/injector.hpp"
#include "fdir/event.hpp"
#include "noc/noc.hpp"
#include "noc/workload.hpp"

namespace hermes::noc {
namespace {

/// A small uniform stream: `count` beats to `endpoint`, one per cycle,
/// payloads derived from the seed.
std::vector<BeatRequest> stream_to(std::uint32_t endpoint, std::uint32_t count,
                                   std::uint64_t seed = 7) {
  std::vector<BeatRequest> beats(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    beats[i].release_cycle = i;
    beats[i].endpoint = endpoint;
    beats[i].payload = respond(endpoint + 13, seed * 0x2545F4914F6CDD1DULL + i);
  }
  return beats;
}

fault::FaultPlan one_point_plan(std::string_view point,
                                fault::FaultSchedule schedule,
                                std::uint64_t seed = 11) {
  fault::FaultPlan plan;
  plan.seed = seed;
  plan.points.push_back({std::string(point), schedule});
  return plan;
}

// ---------------------------------------------------------------------------
// Delivery and determinism
// ---------------------------------------------------------------------------

TEST(Delivery, AllBeatsCompleteCleanly) {
  Crossbar fabric(FabricConfig{}, {{"p0"}, {"p1"}},
                  {{"e0", 0}, {"e1", 1}});
  fabric.bind_workload(0, stream_to(0, 20, 3));
  fabric.bind_workload(0, stream_to(1, 10, 4));
  fabric.bind_workload(1, stream_to(1, 15, 5));

  const FabricResult result = fabric.run();
  ASSERT_TRUE(result.status.ok()) << result.status.to_string();
  EXPECT_EQ(result.ports[0].completed, 30u);
  EXPECT_EQ(result.ports[1].completed, 15u);
  EXPECT_EQ(result.ports[0].failed + result.ports[1].failed, 0u);
  EXPECT_EQ(result.silent, 0u);
  EXPECT_GT(result.ports[0].latency_sum, 0u);
  EXPECT_EQ(result.domains[0].completed, 20u);
  EXPECT_EQ(result.domains[1].completed, 25u);
}

TEST(Delivery, ContentionScenarioIsRunTwiceBitIdentical) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    ContentionScenario a = make_contention_scenario(seed);
    ContentionScenario b = make_contention_scenario(seed);
    Crossbar fa(a.fabric, a.ports, a.endpoints);
    Crossbar fb(b.fabric, b.ports, b.endpoints);
    for (PortTraffic& t : a.traffic) fa.bind_workload(t.port, t.beats);
    for (PortTraffic& t : b.traffic) fb.bind_workload(t.port, t.beats);
    const FabricResult ra = fa.run();
    const FabricResult rb = fb.run();
    EXPECT_EQ(ra.fingerprint(), rb.fingerprint()) << "seed " << seed;
    EXPECT_TRUE(ra.status.ok()) << ra.status.to_string();
    EXPECT_EQ(ra.silent, 0u);
  }
}

TEST(Delivery, RunDeadlineConvertsHangToError) {
  FabricConfig config;
  config.run_deadline_cycles = 50;  // far too tight for 64 beats
  Crossbar fabric(config, {{"p0"}}, {{"e0", 0, /*service=*/8}});
  fabric.bind_workload(0, stream_to(0, 64));
  const FabricResult result = fabric.run();
  EXPECT_EQ(result.status.code(), ErrorCode::kDeadlineExceeded);
  // Every beat resolved anyway: completed or cleanly failed, no hang.
  EXPECT_EQ(result.ports[0].completed + result.ports[0].failed, 64u);
}

// ---------------------------------------------------------------------------
// QoS arbitration
// ---------------------------------------------------------------------------

TEST(Qos, HigherPriorityClassCompletesFirst) {
  FabricConfig config;
  config.starvation_watchdog_cycles = ~0ULL;  // isolate the priority effect
  config.beat_timeout_cycles = 4096;
  Crossbar fabric(config, {{"high", 0, 1}, {"low", 1, 1}},
                  {{"e0", 0, /*service=*/2}});
  fabric.bind_workload(0, stream_to(0, 30, 1));
  fabric.bind_workload(1, stream_to(0, 30, 2));

  const FabricResult result = fabric.run();
  ASSERT_TRUE(result.status.ok()) << result.status.to_string();
  ASSERT_EQ(result.ports[0].completed, 30u);
  ASSERT_EQ(result.ports[1].completed, 30u);
  // The high class owns the fabric while it has traffic: its mean latency
  // must be well under the low class's.
  EXPECT_LT(result.ports[0].latency_sum * 2, result.ports[1].latency_sum);
}

TEST(Qos, WeightedRoundRobinFavorsTheHeavyPort) {
  FabricConfig config;
  config.starvation_watchdog_cycles = ~0ULL;
  config.beat_timeout_cycles = 4096;
  Crossbar fabric(config, {{"heavy", 0, 3}, {"light", 0, 1}},
                  {{"e0", 0, /*service=*/1, /*input=*/2, /*credits=*/8}});
  fabric.bind_workload(0, stream_to(0, 40, 1));
  fabric.bind_workload(1, stream_to(0, 40, 2));

  const FabricResult result = fabric.run();
  ASSERT_TRUE(result.status.ok()) << result.status.to_string();
  ASSERT_EQ(result.ports[0].completed, 40u);
  ASSERT_EQ(result.ports[1].completed, 40u);
  // Same class, 3:1 weights: the heavy port's beats wait measurably less.
  EXPECT_LT(result.ports[0].latency_sum, result.ports[1].latency_sum);
}

TEST(Qos, StarvationWatchdogPromotesTheStarvedPort) {
  FabricConfig config;
  config.starvation_watchdog_cycles = 16;
  config.beat_timeout_cycles = 4096;
  Crossbar fabric(config, {{"flood", 0, 1}, {"trickle", 3, 1}},
                  {{"e0", 0, /*service=*/2}});
  fabric.bind_workload(0, stream_to(0, 60, 1));
  fabric.bind_workload(1, stream_to(0, 6, 2));

  const FabricResult result = fabric.run();
  ASSERT_TRUE(result.status.ok()) << result.status.to_string();
  EXPECT_EQ(result.ports[1].completed, 6u);
  // Without promotion the trickle port would wait for the whole flood;
  // the watchdog must have lifted it past the priority classes.
  EXPECT_GT(result.ports[1].starvation_promotions, 0u);
}

TEST(Credits, TinyCreditPoolStillDrainsEverything) {
  Crossbar fabric(FabricConfig{},
                  {{"p0"}, {"p1"}},
                  {{"e0", 0, /*service=*/3, /*input=*/1, /*credits=*/1}});
  fabric.bind_workload(0, stream_to(0, 25, 1));
  fabric.bind_workload(1, stream_to(0, 25, 2));
  const FabricResult result = fabric.run();
  ASSERT_TRUE(result.status.ok()) << result.status.to_string();
  EXPECT_EQ(result.ports[0].completed + result.ports[1].completed, 50u);
  EXPECT_EQ(result.ports[0].timeouts + result.ports[1].timeouts, 0u);
}

// ---------------------------------------------------------------------------
// noc.* fault points and their ladders
// ---------------------------------------------------------------------------

TEST(Faults, DroppedBeatsTimeOutRetryAndComplete) {
  FabricConfig config;
  config.beat_timeout_cycles = 32;
  Crossbar fabric(config, {{"p0"}}, {{"e0"}});
  fault::FaultInjector injector(one_point_plan(
      "noc.beat.drop", {.probability = 1.0, .max_fires = 3}));
  fabric.attach_injector(&injector);
  fdir::FdirBus bus(1024);
  fabric.attach_fdir(&bus);
  fabric.bind_workload(0, stream_to(0, 20));

  const FabricResult result = fabric.run();
  ASSERT_TRUE(result.status.ok()) << result.status.to_string();
  EXPECT_EQ(result.ports[0].completed, 20u);
  EXPECT_EQ(result.ports[0].timeouts, 3u);
  EXPECT_EQ(result.ports[0].retries, 3u);
  EXPECT_EQ(result.silent, 0u);
  // Each retry rung was published on the NoC layer with the domain in detail.
  unsigned retried = 0;
  for (const fdir::FdirEvent& event : bus.drain()) {
    if (event.layer == fdir::Layer::kNoc &&
        event.severity == fdir::Severity::kRetried) {
      ++retried;
      EXPECT_EQ(event.detail, 0u);
      EXPECT_EQ(event.code, ErrorCode::kDeadlineExceeded);
    }
  }
  EXPECT_EQ(retried, 3u);
}

TEST(Faults, CorruptBeatsAreCaughtByCrcNeverSilent) {
  Crossbar fabric(FabricConfig{}, {{"p0"}}, {{"e0"}});
  fault::FaultInjector injector(one_point_plan(
      "noc.beat.corrupt", {.probability = 1.0, .max_fires = 2}));
  fabric.attach_injector(&injector);
  fabric.bind_workload(0, stream_to(0, 16));

  const FabricResult result = fabric.run();
  ASSERT_TRUE(result.status.ok()) << result.status.to_string();
  EXPECT_EQ(result.ports[0].completed, 16u);
  EXPECT_EQ(result.endpoints[0].crc_rejected, 2u);
  EXPECT_EQ(result.ports[0].naks, 2u);
  EXPECT_EQ(result.domains[0].corrupt_detected, 2u);
  EXPECT_EQ(result.silent, 0u);  // the robustness contract
}

TEST(Faults, LeakedCreditsAreAuditedBack) {
  Crossbar fabric(FabricConfig{}, {{"p0"}},
                  {{"e0", 0, /*service=*/1, /*input=*/4, /*credits=*/2}});
  fault::FaultInjector injector(one_point_plan(
      "noc.credit.leak", {.probability = 1.0, .max_fires = 4}));
  fabric.attach_injector(&injector);
  fabric.bind_workload(0, stream_to(0, 30));

  const FabricResult result = fabric.run();
  ASSERT_TRUE(result.status.ok()) << result.status.to_string();
  EXPECT_EQ(result.ports[0].completed, 30u);
  // Every leaked credit was detected and restored — a counted correction,
  // never a throughput collapse.
  EXPECT_EQ(result.domains[0].credit_leaks_recovered, 4u);
}

TEST(Faults, ArbitrationStallsDelayButNeverLose) {
  FabricConfig config;
  config.beat_timeout_cycles = 256;
  Crossbar fabric(config, {{"p0"}}, {{"e0"}});
  fault::FaultInjector injector(one_point_plan(
      "noc.arb.stall", {.probability = 1.0, .max_fires = 12}));
  fabric.attach_injector(&injector);
  fabric.bind_workload(0, stream_to(0, 20));

  const FabricResult result = fabric.run();
  ASSERT_TRUE(result.status.ok()) << result.status.to_string();
  EXPECT_EQ(result.ports[0].completed, 20u);
  EXPECT_EQ(result.domains[0].arb_stalls, 12u);
}

TEST(Faults, WedgeTripsTheWatchdogAndQuarantinesTheDomain) {
  FabricConfig config;
  config.beat_timeout_cycles = 24;
  config.progress_watchdog_cycles = 48;
  config.quarantine_on_watchdog = true;
  Crossbar fabric(config, {{"p0"}}, {{"wedgy", 0}, {"healthy", 1}});
  fault::FaultInjector injector(one_point_plan(
      "noc.endpoint.wedge", {.probability = 1.0, .max_fires = 1}));
  fabric.attach_injector(&injector);
  fdir::FdirBus bus(4096);
  fabric.attach_fdir(&bus);
  fabric.bind_workload(0, stream_to(0, 12, 1));
  fabric.bind_workload(0, stream_to(1, 12, 2));

  const FabricResult result = fabric.run();
  ASSERT_TRUE(result.status.ok()) << result.status.to_string();
  EXPECT_EQ(result.endpoints[0].wedges, 1u);
  EXPECT_EQ(result.endpoints[0].watchdog_trips, 1u);
  EXPECT_EQ(result.domains[0].quarantines, 1u);
  EXPECT_GT(result.domains[0].failed, 0u);  // drained + rejected, cleanly
  EXPECT_TRUE(fabric.domain_quarantined(0));
  // The healthy domain was untouched.
  EXPECT_FALSE(fabric.domain_quarantined(1));
  EXPECT_EQ(result.domains[1].completed, 12u);
  EXPECT_EQ(result.domains[1].failed, 0u);
  EXPECT_EQ(result.silent, 0u);
  // The watchdog published the uncorrectable detection with the domain.
  bool tripped = false;
  for (const fdir::FdirEvent& event : bus.drain()) {
    if (event.layer == fdir::Layer::kNoc &&
        event.severity == fdir::Severity::kUncorrectable) {
      tripped = true;
      EXPECT_EQ(event.detail, 0u);
    }
  }
  EXPECT_TRUE(tripped);
}

// ---------------------------------------------------------------------------
// Containment controls
// ---------------------------------------------------------------------------

TEST(Containment, QuarantinedDomainRejectsUntilReadmitted) {
  Crossbar fabric(FabricConfig{}, {{"p0"}}, {{"e0", 0}, {"e1", 1}});
  fabric.quarantine_domain(0);

  fabric.bind_workload(0, stream_to(0, 8, 1));
  fabric.bind_workload(0, stream_to(1, 8, 2));
  FabricResult result = fabric.run();
  ASSERT_TRUE(result.status.ok()) << result.status.to_string();
  EXPECT_EQ(result.ports[0].rejected_quarantined, 8u);
  EXPECT_EQ(result.domains[0].completed, 0u);
  EXPECT_EQ(result.domains[1].completed, 8u);

  EXPECT_TRUE(fabric.readmit_domain(0));
  EXPECT_FALSE(fabric.readmit_domain(0));  // already admitted
  fabric.bind_workload(0, stream_to(0, 8, 3));
  result = fabric.run();
  ASSERT_TRUE(result.status.ok()) << result.status.to_string();
  EXPECT_EQ(result.domains[0].completed, 8u);
  EXPECT_EQ(result.domains[0].readmissions, 1u);
}

TEST(Containment, MaskedPartitionPortsFailCleanly) {
  Crossbar fabric(FabricConfig{},
                  {{"hv0", 0, 1, 8, /*owner=*/0}, {"hv1", 0, 1, 8, 1}},
                  {{"e0"}});
  fabric.mask_partition(0);
  fabric.bind_workload(0, stream_to(0, 10, 1));
  fabric.bind_workload(1, stream_to(0, 10, 2));
  FabricResult result = fabric.run();
  ASSERT_TRUE(result.status.ok()) << result.status.to_string();
  EXPECT_EQ(result.ports[0].rejected_masked, 10u);
  EXPECT_EQ(result.ports[0].completed, 0u);
  EXPECT_EQ(result.ports[1].completed, 10u);

  fabric.unmask_partition(0);
  fabric.bind_workload(0, stream_to(0, 10, 3));
  result = fabric.run();
  EXPECT_EQ(result.ports[0].completed, 10u);
}

// The satellite containment property: a fault injected in one endpoint's
// domain never changes another domain's result digest or stats — over ≥24
// seeds, with the whole noc.* arsenal aimed at domain 0.
TEST(Containment, PropertyFaultedDomainNeverMovesOtherDomains) {
  constexpr std::uint64_t kSeeds = 24;
  constexpr std::string_view kDomainPoints[] = {
      "noc.endpoint.wedge", "noc.beat.drop", "noc.beat.corrupt",
      "noc.credit.leak", "noc.arb.stall"};

  // Fault-free reference outcome of the canonical contention scenario.
  ContentionScenario base = make_contention_scenario(99);
  Crossbar clean(base.fabric, base.ports, base.endpoints);
  for (PortTraffic& t : base.traffic) clean.bind_workload(t.port, t.beats);
  const FabricResult reference = clean.run();
  ASSERT_TRUE(reference.status.ok()) << reference.status.to_string();

  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    ContentionScenario scenario = make_contention_scenario(99);
    scenario.fabric.fault_domain_filter = 0;  // confine the blast radius
    Crossbar fabric(scenario.fabric, scenario.ports, scenario.endpoints);
    fault::FaultInjector injector(
        fault::make_random_plan(seed, kDomainPoints));
    fabric.attach_injector(&injector);
    for (PortTraffic& t : scenario.traffic) {
      fabric.bind_workload(t.port, t.beats);
    }
    const FabricResult result = fabric.run();

    ASSERT_TRUE(result.status.ok())
        << "seed " << seed << ": " << result.status.to_string();
    EXPECT_EQ(result.silent, 0u) << "seed " << seed;
    for (unsigned domain = 1; domain < fabric.num_domains(); ++domain) {
      EXPECT_EQ(result.domain_digest[domain], reference.domain_digest[domain])
          << "seed " << seed << " moved domain " << domain << "'s digest";
      const DomainStats& got = result.domains[domain];
      const DomainStats& want = reference.domains[domain];
      EXPECT_EQ(got.completed, want.completed) << "seed " << seed;
      EXPECT_EQ(got.failed, want.failed) << "seed " << seed;
      EXPECT_EQ(got.retries, want.retries) << "seed " << seed;
      EXPECT_EQ(got.timeouts, want.timeouts) << "seed " << seed;
      EXPECT_EQ(got.corrupt_detected, want.corrupt_detected)
          << "seed " << seed;
      EXPECT_EQ(got.credit_leaks_recovered, want.credit_leaks_recovered)
          << "seed " << seed;
      EXPECT_EQ(got.arb_stalls, want.arb_stalls) << "seed " << seed;
      EXPECT_EQ(got.quarantines, want.quarantines) << "seed " << seed;
      EXPECT_EQ(got.drained, want.drained) << "seed " << seed;
    }
  }
}

// ---------------------------------------------------------------------------
// Workload generators and the campaign runner
// ---------------------------------------------------------------------------

TEST(Workloads, GeneratorsAreDeterministicWithExpectedShapes) {
  WorkloadSpec camera{TrafficPattern::kCameraFrames, 0, 3, 42, 0};
  EXPECT_EQ(generate_workload(camera).size(), 3u * 64u);
  WorkloadSpec codec{TrafficPattern::kCodecBlocks, 1, 5, 42, 0};
  EXPECT_EQ(generate_workload(codec).size(), 5u * 16u);

  WorkloadSpec packets{TrafficPattern::kPacketStream, 2, 12, 42, 0};
  const std::vector<BeatRequest> a = generate_workload(packets);
  const std::vector<BeatRequest> b = generate_workload(packets);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].release_cycle, b[i].release_cycle);
    EXPECT_EQ(a[i].payload, b[i].payload);
  }
  // Packets are 1..8 beats each.
  EXPECT_GE(a.size(), 12u);
  EXPECT_LE(a.size(), 12u * 8u);
}

TEST(Workloads, TaskGraphSourcesDriveTheFabric) {
  df::TaskGraph graph;
  const std::size_t cam = graph.add_task({"camera", 4, 2, 3, 10});
  const std::size_t net = graph.add_task({"net", 2, 0, 2, 6});
  const std::size_t sink = graph.add_task({"merge", 1, 0, 1, 4});
  graph.connect(cam, sink);
  graph.connect(net, sink);
  graph.sources = {cam, net};
  graph.sinks = {sink};

  const std::vector<PortTraffic> traffic =
      workloads_from_taskgraph(graph, /*tokens=*/16, /*seed=*/5,
                               /*num_ports=*/2, /*num_endpoints=*/3);
  Crossbar fabric(FabricConfig{}, {{"p0"}, {"p1"}},
                  {{"e0"}, {"e1"}, {"e2"}});
  std::uint64_t bound = 0;
  for (const PortTraffic& t : traffic) {
    bound += t.beats.size();
    fabric.bind_workload(t.port, t.beats);
  }
  EXPECT_EQ(bound, 2u * 16u);  // one stream per source task
  const FabricResult result = fabric.run();
  ASSERT_TRUE(result.status.ok()) << result.status.to_string();
  std::uint64_t completed = 0;
  for (const PortStats& port : result.ports) completed += port.completed;
  EXPECT_EQ(completed, bound);
  EXPECT_EQ(result.silent, 0u);
}

TEST(Campaign, PooledRunIsBitIdenticalToSerial) {
  const std::vector<std::uint64_t> serial = run_noc_campaign(1, 8, nullptr);
  ThreadPool pool(3);
  const std::vector<std::uint64_t> pooled = run_noc_campaign(1, 8, &pool);
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], pooled[i]) << "seed " << 1 + i;
  }
}

TEST(Catalog, NocPointsAreInTheDefaultCatalog) {
  const auto catalog = fault::default_point_catalog();
  for (const std::string_view point : noc_point_catalog()) {
    bool found = false;
    for (const std::string_view name : catalog) {
      if (name == point) found = true;
    }
    EXPECT_TRUE(found) << point << " missing from default_point_catalog()";
  }
}

}  // namespace
}  // namespace hermes::noc
