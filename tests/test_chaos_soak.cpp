// Deterministic chaos soak: hundreds of seeded random fault plans thrown at
// the boot chain, the AXI-backed HLS accelerator, and a hypervisor mission.
// The invariant under every plan is the robustness contract of the stack:
// a clean Status (or a clean success) — never a hang, never a crash, never
// silent corruption — and bit-identical outcomes when a seed is replayed.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "axi/hls_axi.hpp"
#include "axi/slave_memory.hpp"
#include "boot/bl.hpp"
#include "boot/loadlist.hpp"
#include "dataflow/taskgraph.hpp"
#include "fault/campaign.hpp"
#include "fault/injector.hpp"
#include "hls/flow.hpp"
#include "hv/hypervisor.hpp"
#include "nxmap/bitstream.hpp"
#include "soak_util.hpp"

namespace hermes::fault {
namespace {

using soak::kFnvBasis;
using soak::mix;

constexpr std::uint64_t kBootSeeds = 80;
constexpr std::uint64_t kAxiSeeds = 60;
constexpr std::uint64_t kHvSeeds = 80;
constexpr std::uint64_t kEfpgaSeeds = 40;
constexpr std::uint64_t kDataflowSeeds = 40;
constexpr std::uint64_t kSlicedSeeds = 24;
constexpr std::uint64_t kForkSeeds = 30;
static_assert(kBootSeeds + kAxiSeeds + kHvSeeds + kEfpgaSeeds +
                      kDataflowSeeds + kSlicedSeeds + kForkSeeds >= 280,
              "the soak must cover at least 280 fault plans");

constexpr std::string_view kBootPoints[] = {
    "flash.rot.replica", "flash.rot.voted", "spw.frame.corrupt",
    "spw.frame.drop"};
constexpr std::string_view kAxiPoints[] = {
    "axi.ar.stall", "axi.aw.stall", "axi.r.stall",
    "axi.r.corrupt", "axi.r.slverr", "axi.b.slverr"};
constexpr std::string_view kHvPoints[] = {"hv.job.overrun",
                                          "hv.partition.crash"};
constexpr std::string_view kEfpgaPoints[] = {
    "efpga.prog.header.corrupt", "efpga.prog.frame.corrupt",
    "efpga.prog.frame.drop", "efpga.config.rot"};
constexpr std::string_view kDataflowPoints[] = {
    "df.node.transient", "df.node.overrun", "df.node.permanent"};

// ---------------------------------------------------------------------------
// Boot-chain scenario
// ---------------------------------------------------------------------------

std::uint64_t run_boot_once(std::uint64_t seed, bool* survived) {
  FaultInjector injector(make_random_plan(seed, kBootPoints));
  boot::BootEnvironment env;
  env.attach_injector(&injector);

  std::vector<std::uint8_t> bl1(1024);
  for (std::size_t i = 0; i < bl1.size(); ++i) {
    bl1[i] = static_cast<std::uint8_t>(i * 7 + 13);
  }
  boot::LoadList list;
  boot::LoadEntry sw;
  sw.kind = boot::LoadKind::kSoftware;
  sw.name = "payload";
  sw.dest_addr = boot::MemoryMap::kDdrBase + 0x1000;
  list.entries.push_back(sw);
  boot::LoadEntry app;
  app.kind = boot::LoadKind::kBl2;
  app.name = "app";
  app.dest_addr = boot::MemoryMap::kDdrBase;
  list.entries.push_back(app);
  std::vector<std::vector<std::uint8_t>> images(2);
  images[0].assign(1536, 0x3C);
  images[1].assign(2048, 0xA5);
  boot::stage_boot_media(env, bl1, list, images);

  const boot::BootResult result = boot::run_boot_chain(env);

  // Robustness contract: success means the chain went all the way and every
  // deployed image passed its digest; failure must be a clean Status.
  if (result.status.ok()) {
    EXPECT_EQ(result.reached, boot::BootStage::kApplication);
  } else {
    EXPECT_NE(result.reached, boot::BootStage::kApplication);
    EXPECT_FALSE(result.status.to_string().empty());
  }
  *survived = result.status.ok();

  std::uint64_t hash = kFnvBasis;
  hash = mix(hash, static_cast<std::uint64_t>(result.status.code()));
  hash = mix(hash, static_cast<std::uint64_t>(result.reached));
  hash = mix(hash, result.report.total_cycles);
  hash = mix(hash, result.report.flash_corrected_bytes);
  hash = mix(hash, result.report.spw_crc_errors);
  hash = mix(hash, result.report.integrity_retries);
  hash = mix(hash, result.report.spw_fallbacks);
  hash = mix(hash, result.report.steps.size());
  hash = mix(hash, injector.total_fires());
  return hash;
}

TEST(ChaosSoak, BootChainUnderRandomFaultPlans) {
  std::uint64_t survivors = 0, armed = 0;
  for (std::uint64_t seed = 1; seed <= kBootSeeds; ++seed) {
    bool survived_a = false, survived_b = false;
    const std::uint64_t a = run_boot_once(seed, &survived_a);
    const std::uint64_t b = run_boot_once(seed, &survived_b);
    ASSERT_EQ(a, b) << "seed " << seed << " is not deterministic";
    ASSERT_EQ(survived_a, survived_b);
    survivors += survived_a ? 1 : 0;
    armed += make_random_plan(seed, kBootPoints).points.size();
  }
  // The campaign must be a real one: faults armed on every seed, and the
  // recovery ladders must save a decent share of the missions.
  EXPECT_GE(armed, kBootSeeds);
  EXPECT_GT(survivors, kBootSeeds / 4);
}

// ---------------------------------------------------------------------------
// AXI-backed accelerator scenario
// ---------------------------------------------------------------------------

std::uint64_t run_axi_once(const hls::FlowResult& flow,
                           const axi::AxiMap& map, std::uint64_t seed,
                           bool* survived) {
  FaultInjector injector(make_random_plan(seed, kAxiPoints));
  axi::AxiSlaveMemory ddr(1 << 16, axi::MemoryTiming{});
  ddr.attach_injector(&injector);
  for (std::size_t i = 0; i < 32; ++i) {
    ddr.poke_word(map.base_addr.at(0) + i * 4, i * 5 + 2, 4);
  }
  axi::MasterConfig config;
  config.watchdog_cycles = 10'000;  // keep tripped-transaction cost bounded
  auto run = axi::run_with_axi(flow, {3}, ddr, map, axi::AxiMode::kDmaBurst,
                               {}, 2'000'000, config);

  std::uint64_t hash = kFnvBasis;
  if (run.ok()) {
    // Corrupted-but-OKAY read beats (axi.r.corrupt) are invisible to the
    // protocol, so the end-to-end golden compare is the detector: a mismatch
    // is legal ONLY when that point actually fired, and it must be flagged
    // through `match` — never silent.
    if (!run.value().match) {
      const PointId corrupt = injector.find_point("axi.r.corrupt");
      const bool attributable =
          corrupt != kNoFaultPoint && injector.stats(corrupt).fires > 0;
      EXPECT_TRUE(attributable)
          << "silent corruption: " << run.value().mismatch;
    }
    hash = mix(hash, run.value().match ? 1u : 0u);
    hash = mix(hash, run.value().return_value);
    hash = mix(hash, run.value().total_cycles);
    hash = mix(hash, run.value().bus.retries);
    hash = mix(hash, run.value().bus.errors);
    hash = mix(hash, run.value().bus.watchdog_trips);
    for (std::size_t i = 0; i < 32; ++i) {
      hash = mix(hash, ddr.peek_word(map.base_addr.at(0) + i * 4, 4));
    }
  } else {
    // Failed clean: one of the error paths the master is allowed to take.
    const ErrorCode code = run.status().code();
    EXPECT_TRUE(code == ErrorCode::kInternal ||
                code == ErrorCode::kInvalidArgument ||
                code == ErrorCode::kDeadlineExceeded)
        << run.status().to_string();
    hash = mix(hash, static_cast<std::uint64_t>(code));
  }
  *survived = run.ok();
  hash = mix(hash, injector.total_fires());
  return hash;
}

TEST(ChaosSoak, AxiAcceleratorUnderRandomFaultPlans) {
  const char* source = R"(
    void scale(int32_t data[32], int factor) {
      for (int i = 0; i < 32; i = i + 1) {
        data[i] = data[i] * factor + 1;
      }
    }
  )";
  hls::FlowOptions options;
  options.top = "scale";
  auto flow = hls::run_flow(source, options);
  ASSERT_TRUE(flow.ok()) << flow.status().to_string();
  const axi::AxiMap map = axi::default_axi_map(flow.value().function);

  std::uint64_t survivors = 0;
  for (std::uint64_t seed = 1; seed <= kAxiSeeds; ++seed) {
    bool survived_a = false, survived_b = false;
    const std::uint64_t a = run_axi_once(flow.value(), map, seed, &survived_a);
    const std::uint64_t b = run_axi_once(flow.value(), map, seed, &survived_b);
    ASSERT_EQ(a, b) << "seed " << seed << " is not deterministic";
    ASSERT_EQ(survived_a, survived_b);
    survivors += survived_a ? 1 : 0;
  }
  // Bounded retries must carry a decent share of transfers through.
  EXPECT_GT(survivors, kAxiSeeds / 4);
}

// ---------------------------------------------------------------------------
// eFPGA programming-upset scenario
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> soak_bitstream() {
  std::vector<nx::BitstreamFrame> frames(3);
  for (std::size_t f = 0; f < frames.size(); ++f) {
    frames[f].column = static_cast<std::uint32_t>(2 * f);
    for (std::size_t w = 0; w < 6 + f * 3; ++w) {
      frames[f].words.push_back(
          static_cast<std::uint32_t>((f << 24) ^ (w * 0x01000193u) ^ 0xC3));
    }
  }
  return nx::pack_raw_bitstream(/*device_id=*/0xE0E0, frames);
}

std::uint64_t run_efpga_boot_once(std::uint64_t seed, bool arm, bool* survived,
                                  std::uint64_t* digest_out) {
  FaultInjector injector;  // unarmed unless a plan is loaded below
  if (arm) injector.load_plan(make_random_plan(seed, kEfpgaPoints));
  boot::BootEnvironment env;
  env.attach_injector(&injector);

  std::vector<std::uint8_t> bl1(1024);
  for (std::size_t i = 0; i < bl1.size(); ++i) {
    bl1[i] = static_cast<std::uint8_t>(i * 11 + 3);
  }
  boot::LoadList list;
  boot::LoadEntry fpga;
  fpga.kind = boot::LoadKind::kBitstream;
  fpga.name = "matrix";
  fpga.dest_addr = boot::MemoryMap::kDdrBase + 0x10000;
  list.entries.push_back(fpga);
  boot::LoadEntry app;
  app.kind = boot::LoadKind::kBl2;
  app.name = "app";
  app.dest_addr = boot::MemoryMap::kDdrBase;
  list.entries.push_back(app);
  std::vector<std::vector<std::uint8_t>> images = {
      soak_bitstream(), std::vector<std::uint8_t>(2048, 0x5A)};
  boot::stage_boot_media(env, bl1, list, images);

  const boot::BootResult result = boot::run_boot_chain(env);
  // Keep the configuration under static-rot pressure past the boot-time pass.
  for (int pass = 0; pass < 3; ++pass) (void)env.soc.scrub_efpga();

  const boot::EfpgaStats& efpga = env.soc.efpga_stats();
  // The no-silent-corruption contract: every configuration upset is either
  // corrected, repaired by the frame re-program rung, or a clean failure —
  // the scrubber must never observe a miscorrection.
  EXPECT_EQ(efpga.scrub_silent, 0u) << "seed " << seed;
  if (result.status.ok()) {
    EXPECT_EQ(result.reached, boot::BootStage::kApplication);
    EXPECT_TRUE(env.soc.efpga_programmed);
  } else {
    EXPECT_FALSE(result.status.to_string().empty());
  }
  *survived = result.status.ok() && env.soc.efpga_programmed;
  *digest_out = env.soc.efpga_config_digest();

  std::uint64_t hash = kFnvBasis;
  hash = mix(hash, static_cast<std::uint64_t>(result.status.code()));
  hash = mix(hash, static_cast<std::uint64_t>(result.reached));
  hash = mix(hash, result.report.total_cycles);
  hash = mix(hash, result.report.efpga_frame_rewrites);
  hash = mix(hash, result.report.efpga_scrub_corrections);
  hash = mix(hash, efpga.frames_programmed);
  hash = mix(hash, efpga.frame_crc_mismatches);
  hash = mix(hash, efpga.frame_rewrites);
  hash = mix(hash, efpga.header_rewrites);
  hash = mix(hash, efpga.prog_failures);
  hash = mix(hash, efpga.scrub_passes);
  hash = mix(hash, efpga.scrub_corrected);
  hash = mix(hash, efpga.scrub_uncorrectable);
  hash = mix(hash, efpga.frames_reprogrammed);
  hash = mix(hash, *digest_out);
  hash = mix(hash, injector.total_fires());
  return hash;
}

TEST(ChaosSoak, EfpgaProgrammingUnderRandomFaultPlans) {
  // Reference: the configuration digest of an upset-free boot. Every soaked
  // boot that reports success must land on exactly this configuration — a
  // corrupt frame that slipped through the readback ladder would diverge.
  bool clean_ok = false;
  std::uint64_t clean_digest = 0;
  (void)run_efpga_boot_once(0, /*arm=*/false, &clean_ok, &clean_digest);
  ASSERT_TRUE(clean_ok);

  std::uint64_t survivors = 0;
  for (std::uint64_t seed = 1; seed <= kEfpgaSeeds; ++seed) {
    bool survived_a = false, survived_b = false;
    std::uint64_t digest_a = 0, digest_b = 0;
    const std::uint64_t a =
        run_efpga_boot_once(seed, /*arm=*/true, &survived_a, &digest_a);
    const std::uint64_t b =
        run_efpga_boot_once(seed, /*arm=*/true, &survived_b, &digest_b);
    ASSERT_EQ(a, b) << "seed " << seed << " is not deterministic";
    ASSERT_EQ(survived_a, survived_b);
    if (survived_a) {
      EXPECT_EQ(digest_a, clean_digest)
          << "seed " << seed << ": a silently corrupt frame was accepted";
    }
    survivors += survived_a ? 1 : 0;
  }
  // The readback/re-write ladder must carry most programming runs through.
  EXPECT_GT(survivors, kEfpgaSeeds / 4);
}

// ---------------------------------------------------------------------------
// Dataflow node-retry scenario
// ---------------------------------------------------------------------------

std::uint64_t run_dataflow_once(std::uint64_t seed, bool* survived) {
  FaultInjector injector(make_random_plan(seed, kDataflowPoints));

  // Deterministic per-seed graph: a pipeline with a fork-join in the middle,
  // shaped by the seed only.
  df::TaskGraph graph;
  const unsigned workers = 2 + seed % 3;
  const std::size_t src = graph.add_task({"src", 1 + seed % 4, 0, 2, 10});
  const std::size_t join = graph.add_task({"join", 2 + seed % 5, 0, 2, 10});
  for (unsigned w = 0; w < workers; ++w) {
    const std::size_t worker = graph.add_task(
        {"w" + std::to_string(w), 3 + (seed + w) % 9, 0, 4, 50});
    graph.connect(src, worker, 2 + seed % 3);
    graph.connect(worker, join, 2);
  }
  graph.sources = {src};
  graph.sinks = {join};

  df::DataflowOptions options;
  options.injector = &injector;
  df::DataflowStats stats;
  options.stats_out = &stats;
  options.retry.max_retries = 3;
  options.retry.backoff_cycles = 4;
  auto run = df::simulate_dataflow(graph, 4 + seed % 8, options);

  if (!run.ok()) {
    // Clean failure set: a permanent node fault, an exhausted retry budget,
    // or the simulation deadline — never a hang or an unexpected code.
    const ErrorCode code = run.status().code();
    EXPECT_TRUE(code == ErrorCode::kInvalidArgument ||
                code == ErrorCode::kInternal ||
                code == ErrorCode::kDeadlineExceeded)
        << run.status().to_string();
  }
  *survived = run.ok();

  std::uint64_t hash = kFnvBasis;
  hash = mix(hash, run.ok() ? 0u
                            : static_cast<std::uint64_t>(run.status().code()));
  hash = mix(hash, stats.makespan);
  hash = mix(hash, stats.node_retries);
  hash = mix(hash, stats.node_failures);
  for (std::uint64_t retries : stats.retries_per_task) {
    hash = mix(hash, retries);
  }
  hash = mix(hash, injector.total_fires());
  return hash;
}

TEST(ChaosSoak, DataflowRetryUnderRandomFaultPlans) {
  std::uint64_t survivors = 0;
  for (std::uint64_t seed = 1; seed <= kDataflowSeeds; ++seed) {
    bool survived_a = false, survived_b = false;
    const std::uint64_t a = run_dataflow_once(seed, &survived_a);
    const std::uint64_t b = run_dataflow_once(seed, &survived_b);
    ASSERT_EQ(a, b) << "seed " << seed << " is not deterministic";
    ASSERT_EQ(survived_a, survived_b);
    survivors += survived_a ? 1 : 0;
  }
  // Bounded node re-execution must carry most graphs to completion.
  EXPECT_GT(survivors, kDataflowSeeds / 4);
}

// ---------------------------------------------------------------------------
// Hypervisor mission scenario
// ---------------------------------------------------------------------------

std::uint64_t run_hv_once(std::uint64_t seed) {
  hv::HvConfig config;
  config.plan.major_frame = 1000;
  config.plan.per_core.assign(hv::kNumCores, {});
  config.plan.per_core[0] = {{0, 450, 0, 0}, {500, 450, 1, 0}};
  config.plan.per_core[1] = {{0, 900, 2, 0}};
  hv::PartitionConfig aocs;
  aocs.name = "aocs";
  aocs.region = {0x0000, 0x1000};
  aocs.profile = {1000, 0, 200};
  hv::PartitionConfig vbn;
  vbn.name = "vbn";
  vbn.region = {0x1000, 0x1000};
  vbn.profile = {1000, 0, 300};
  hv::PartitionConfig eor;
  eor.name = "eor";
  eor.region = {0x2000, 0x1000};
  eor.profile = {2000, 0, 400};
  config.partitions = {aocs, vbn, eor};
  config.restart_budget = 3;
  config.hm_table[hv::HmEvent::kBudgetOverrun] =
      hv::HmAction::kRestartPartition;

  FaultInjector injector(make_random_plan(seed, kHvPoints));
  hv::Hypervisor hv(config);
  hv.attach_injector(&injector);
  auto stats = hv.run(30'000);
  EXPECT_TRUE(stats.ok()) << stats.status().to_string();
  if (!stats.ok()) return 0;

  std::uint64_t hash = kFnvBasis;
  const hv::RunStats& run = stats.value();
  for (const hv::PartitionStats& partition : run.partitions) {
    // The escalation ladder caps restarts; a partition is never left in an
    // inconsistent state.
    EXPECT_LE(partition.restarts, config.restart_budget);
    EXPECT_TRUE(partition.final_state == hv::PartitionState::kNormal ||
                partition.final_state == hv::PartitionState::kSuspended ||
                partition.final_state == hv::PartitionState::kHalted);
    hash = mix(hash, partition.jobs_completed);
    hash = mix(hash, partition.restarts);
    hash = mix(hash, partition.budget_overruns);
    hash = mix(hash, partition.deadline_misses);
    hash = mix(hash, static_cast<std::uint64_t>(partition.final_state));
  }
  hash = mix(hash, run.hm_log.size());
  for (const hv::HmLogEntry& entry : run.hm_log) {
    hash = mix(hash, entry.when);
    hash = mix(hash, static_cast<std::uint64_t>(entry.event));
    hash = mix(hash, static_cast<std::uint64_t>(entry.action));
  }
  hash = mix(hash, injector.total_fires());
  return hash;
}

TEST(ChaosSoak, HypervisorMissionUnderRandomFaultPlans) {
  for (std::uint64_t seed = 1; seed <= kHvSeeds; ++seed) {
    const std::uint64_t a = run_hv_once(seed);
    const std::uint64_t b = run_hv_once(seed);
    ASSERT_EQ(a, b) << "seed " << seed << " is not deterministic";
    ASSERT_NE(a, 0u);
  }
}

// ---------------------------------------------------------------------------
// Bit-sliced netlist SEU campaign scenario
// ---------------------------------------------------------------------------

TEST(ChaosSoak, SlicedCampaignDeterministicAndSerialIdentical) {
  hls::FlowOptions options;
  options.top = "dot";
  auto flow = hls::run_flow(R"(
    int dot(int a[16], int b[16]) {
      int acc = 0;
      for (int i = 0; i < 16; i = i + 1) { acc = acc + a[i] * b[i]; }
      return acc;
    }
  )", options);
  ASSERT_TRUE(flow.ok()) << flow.status().to_string();
  const hw::Module& module = flow.value().fsmd.module;

  for (std::uint64_t seed = 1; seed <= kSlicedSeeds; ++seed) {
    NetlistSeuPlan plan;
    plan.replicas = 30 + (seed * 7) % 40;  // straddles the 63-replica batch
    plan.cycles_before = 2 + seed % 5;
    plan.cycles_after = 20 + seed % 30;
    plan.base_seed = seed;
    plan.inputs = {{"start", 1}};

    // Run-twice determinism of the sliced engine, and bit-identity against
    // the serial oracle — the invariant that lets the benches trust the
    // 64-replica path.
    const std::uint64_t sliced_a =
        fingerprint(run_netlist_seu_campaign_sliced(module, plan));
    const std::uint64_t sliced_b =
        fingerprint(run_netlist_seu_campaign_sliced(module, plan));
    const std::uint64_t serial =
        fingerprint(run_netlist_seu_campaign(module, plan));
    ASSERT_EQ(sliced_a, sliced_b) << "seed " << seed << " is not deterministic";
    ASSERT_EQ(sliced_a, serial)
        << "seed " << seed << " sliced diverged from the serial oracle";
  }
}

// ---------------------------------------------------------------------------
// Forked-SoC scrub campaign scenario
// ---------------------------------------------------------------------------

TEST(ChaosSoak, ForkedScrubCampaignDeterministicAndIsolated) {
  // One booted, programmed SoC; every plan runs on a fork of its snapshot
  // instead of re-programming from scratch.
  boot::BootEnvironment env;
  {
    std::vector<std::uint8_t> bl1(1024);
    for (std::size_t i = 0; i < bl1.size(); ++i) {
      bl1[i] = static_cast<std::uint8_t>(i * 11 + 3);
    }
    boot::LoadList list;
    boot::LoadEntry fpga;
    fpga.kind = boot::LoadKind::kBitstream;
    fpga.name = "matrix";
    fpga.dest_addr = boot::MemoryMap::kDdrBase + 0x10000;
    list.entries.push_back(fpga);
    boot::LoadEntry app;
    app.kind = boot::LoadKind::kBl2;
    app.name = "app";
    app.dest_addr = boot::MemoryMap::kDdrBase;
    list.entries.push_back(app);
    std::vector<std::vector<std::uint8_t>> images = {
        soak_bitstream(), std::vector<std::uint8_t>(2048, 0x5A)};
    boot::stage_boot_media(env, bl1, list, images);
    ASSERT_TRUE(boot::run_boot_chain(env).status.ok());
    ASSERT_TRUE(env.soc.efpga_programmed);
  }
  const boot::SocSnapshot snapshot = env.soc.snapshot();
  const std::uint64_t baseline_digest = env.soc.efpga_config_digest();

  // One plan shape, reseeded per replica — the forked-campaign idiom.
  const FaultPlan shape = make_random_plan(1, kEfpgaPoints);

  const auto run_fork_once = [&](std::uint64_t seed) {
    FaultInjector injector;
    boot::Soc fork = boot::Soc::fork(snapshot, injector, shape, seed);
    EXPECT_EQ(fork.efpga_config_digest(), baseline_digest);
    for (int pass = 0; pass < 4; ++pass) (void)fork.scrub_efpga();
    const boot::EfpgaStats& stats = fork.efpga_stats();
    EXPECT_EQ(stats.scrub_silent, 0u) << "seed " << seed;

    std::uint64_t hash = kFnvBasis;
    hash = mix(hash, stats.scrub_passes);
    hash = mix(hash, stats.scrub_corrected);
    hash = mix(hash, stats.scrub_uncorrectable);
    hash = mix(hash, stats.frames_reprogrammed);
    hash = mix(hash, fork.efpga_config_digest());
    hash = mix(hash, injector.total_fires());
    return hash;
  };

  for (std::uint64_t seed = 1; seed <= kForkSeeds; ++seed) {
    const std::uint64_t a = run_fork_once(seed);
    const std::uint64_t b = run_fork_once(seed);
    ASSERT_EQ(a, b) << "seed " << seed << " is not deterministic";
    // Fork isolation: no campaign may leak back into the snapshot source.
    ASSERT_EQ(env.soc.efpga_config_digest(), baseline_digest);
  }
}

}  // namespace
}  // namespace hermes::fault
