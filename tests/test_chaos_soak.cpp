// Deterministic chaos soak: hundreds of seeded random fault plans thrown at
// the boot chain, the AXI-backed HLS accelerator, and a hypervisor mission.
// The invariant under every plan is the robustness contract of the stack:
// a clean Status (or a clean success) — never a hang, never a crash, never
// silent corruption — and bit-identical outcomes when a seed is replayed.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "axi/hls_axi.hpp"
#include "axi/slave_memory.hpp"
#include "boot/bl.hpp"
#include "boot/loadlist.hpp"
#include "fault/injector.hpp"
#include "hls/flow.hpp"
#include "hv/hypervisor.hpp"

namespace hermes::fault {
namespace {

constexpr std::uint64_t kBootSeeds = 80;
constexpr std::uint64_t kAxiSeeds = 60;
constexpr std::uint64_t kHvSeeds = 80;
static_assert(kBootSeeds + kAxiSeeds + kHvSeeds >= 200,
              "the soak must cover at least 200 fault plans");

/// FNV-1a accumulation over 64-bit words: the outcome fingerprint.
std::uint64_t mix(std::uint64_t hash, std::uint64_t value) {
  hash ^= value;
  return hash * 1099511628211ULL;
}
constexpr std::uint64_t kFnvBasis = 14695981039346656037ULL;

constexpr std::string_view kBootPoints[] = {
    "flash.rot.replica", "flash.rot.voted", "spw.frame.corrupt",
    "spw.frame.drop"};
constexpr std::string_view kAxiPoints[] = {
    "axi.ar.stall", "axi.aw.stall", "axi.r.stall",
    "axi.r.corrupt", "axi.r.slverr", "axi.b.slverr"};
constexpr std::string_view kHvPoints[] = {"hv.job.overrun",
                                          "hv.partition.crash"};

// ---------------------------------------------------------------------------
// Boot-chain scenario
// ---------------------------------------------------------------------------

std::uint64_t run_boot_once(std::uint64_t seed, bool* survived) {
  FaultInjector injector(make_random_plan(seed, kBootPoints));
  boot::BootEnvironment env;
  env.attach_injector(&injector);

  std::vector<std::uint8_t> bl1(1024);
  for (std::size_t i = 0; i < bl1.size(); ++i) {
    bl1[i] = static_cast<std::uint8_t>(i * 7 + 13);
  }
  boot::LoadList list;
  boot::LoadEntry sw;
  sw.kind = boot::LoadKind::kSoftware;
  sw.name = "payload";
  sw.dest_addr = boot::MemoryMap::kDdrBase + 0x1000;
  list.entries.push_back(sw);
  boot::LoadEntry app;
  app.kind = boot::LoadKind::kBl2;
  app.name = "app";
  app.dest_addr = boot::MemoryMap::kDdrBase;
  list.entries.push_back(app);
  std::vector<std::vector<std::uint8_t>> images(2);
  images[0].assign(1536, 0x3C);
  images[1].assign(2048, 0xA5);
  boot::stage_boot_media(env, bl1, list, images);

  const boot::BootResult result = boot::run_boot_chain(env);

  // Robustness contract: success means the chain went all the way and every
  // deployed image passed its digest; failure must be a clean Status.
  if (result.status.ok()) {
    EXPECT_EQ(result.reached, boot::BootStage::kApplication);
  } else {
    EXPECT_NE(result.reached, boot::BootStage::kApplication);
    EXPECT_FALSE(result.status.to_string().empty());
  }
  *survived = result.status.ok();

  std::uint64_t hash = kFnvBasis;
  hash = mix(hash, static_cast<std::uint64_t>(result.status.code()));
  hash = mix(hash, static_cast<std::uint64_t>(result.reached));
  hash = mix(hash, result.report.total_cycles);
  hash = mix(hash, result.report.flash_corrected_bytes);
  hash = mix(hash, result.report.spw_crc_errors);
  hash = mix(hash, result.report.integrity_retries);
  hash = mix(hash, result.report.spw_fallbacks);
  hash = mix(hash, result.report.steps.size());
  hash = mix(hash, injector.total_fires());
  return hash;
}

TEST(ChaosSoak, BootChainUnderRandomFaultPlans) {
  std::uint64_t survivors = 0, armed = 0;
  for (std::uint64_t seed = 1; seed <= kBootSeeds; ++seed) {
    bool survived_a = false, survived_b = false;
    const std::uint64_t a = run_boot_once(seed, &survived_a);
    const std::uint64_t b = run_boot_once(seed, &survived_b);
    ASSERT_EQ(a, b) << "seed " << seed << " is not deterministic";
    ASSERT_EQ(survived_a, survived_b);
    survivors += survived_a ? 1 : 0;
    armed += make_random_plan(seed, kBootPoints).points.size();
  }
  // The campaign must be a real one: faults armed on every seed, and the
  // recovery ladders must save a decent share of the missions.
  EXPECT_GE(armed, kBootSeeds);
  EXPECT_GT(survivors, kBootSeeds / 4);
}

// ---------------------------------------------------------------------------
// AXI-backed accelerator scenario
// ---------------------------------------------------------------------------

std::uint64_t run_axi_once(const hls::FlowResult& flow,
                           const axi::AxiMap& map, std::uint64_t seed,
                           bool* survived) {
  FaultInjector injector(make_random_plan(seed, kAxiPoints));
  axi::AxiSlaveMemory ddr(1 << 16, axi::MemoryTiming{});
  ddr.attach_injector(&injector);
  for (std::size_t i = 0; i < 32; ++i) {
    ddr.poke_word(map.base_addr.at(0) + i * 4, i * 5 + 2, 4);
  }
  axi::MasterConfig config;
  config.watchdog_cycles = 10'000;  // keep tripped-transaction cost bounded
  auto run = axi::run_with_axi(flow, {3}, ddr, map, axi::AxiMode::kDmaBurst,
                               {}, 2'000'000, config);

  std::uint64_t hash = kFnvBasis;
  if (run.ok()) {
    // Corrupted-but-OKAY read beats (axi.r.corrupt) are invisible to the
    // protocol, so the end-to-end golden compare is the detector: a mismatch
    // is legal ONLY when that point actually fired, and it must be flagged
    // through `match` — never silent.
    if (!run.value().match) {
      const PointId corrupt = injector.find_point("axi.r.corrupt");
      const bool attributable =
          corrupt != kNoFaultPoint && injector.stats(corrupt).fires > 0;
      EXPECT_TRUE(attributable)
          << "silent corruption: " << run.value().mismatch;
    }
    hash = mix(hash, run.value().match ? 1u : 0u);
    hash = mix(hash, run.value().return_value);
    hash = mix(hash, run.value().total_cycles);
    hash = mix(hash, run.value().bus.retries);
    hash = mix(hash, run.value().bus.errors);
    hash = mix(hash, run.value().bus.watchdog_trips);
    for (std::size_t i = 0; i < 32; ++i) {
      hash = mix(hash, ddr.peek_word(map.base_addr.at(0) + i * 4, 4));
    }
  } else {
    // Failed clean: one of the error paths the master is allowed to take.
    const ErrorCode code = run.status().code();
    EXPECT_TRUE(code == ErrorCode::kInternal ||
                code == ErrorCode::kInvalidArgument ||
                code == ErrorCode::kDeadlineExceeded)
        << run.status().to_string();
    hash = mix(hash, static_cast<std::uint64_t>(code));
  }
  *survived = run.ok();
  hash = mix(hash, injector.total_fires());
  return hash;
}

TEST(ChaosSoak, AxiAcceleratorUnderRandomFaultPlans) {
  const char* source = R"(
    void scale(int32_t data[32], int factor) {
      for (int i = 0; i < 32; i = i + 1) {
        data[i] = data[i] * factor + 1;
      }
    }
  )";
  hls::FlowOptions options;
  options.top = "scale";
  auto flow = hls::run_flow(source, options);
  ASSERT_TRUE(flow.ok()) << flow.status().to_string();
  const axi::AxiMap map = axi::default_axi_map(flow.value().function);

  std::uint64_t survivors = 0;
  for (std::uint64_t seed = 1; seed <= kAxiSeeds; ++seed) {
    bool survived_a = false, survived_b = false;
    const std::uint64_t a = run_axi_once(flow.value(), map, seed, &survived_a);
    const std::uint64_t b = run_axi_once(flow.value(), map, seed, &survived_b);
    ASSERT_EQ(a, b) << "seed " << seed << " is not deterministic";
    ASSERT_EQ(survived_a, survived_b);
    survivors += survived_a ? 1 : 0;
  }
  // Bounded retries must carry a decent share of transfers through.
  EXPECT_GT(survivors, kAxiSeeds / 4);
}

// ---------------------------------------------------------------------------
// Hypervisor mission scenario
// ---------------------------------------------------------------------------

std::uint64_t run_hv_once(std::uint64_t seed) {
  hv::HvConfig config;
  config.plan.major_frame = 1000;
  config.plan.per_core.assign(hv::kNumCores, {});
  config.plan.per_core[0] = {{0, 450, 0, 0}, {500, 450, 1, 0}};
  config.plan.per_core[1] = {{0, 900, 2, 0}};
  hv::PartitionConfig aocs;
  aocs.name = "aocs";
  aocs.region = {0x0000, 0x1000};
  aocs.profile = {1000, 0, 200};
  hv::PartitionConfig vbn;
  vbn.name = "vbn";
  vbn.region = {0x1000, 0x1000};
  vbn.profile = {1000, 0, 300};
  hv::PartitionConfig eor;
  eor.name = "eor";
  eor.region = {0x2000, 0x1000};
  eor.profile = {2000, 0, 400};
  config.partitions = {aocs, vbn, eor};
  config.restart_budget = 3;
  config.hm_table[hv::HmEvent::kBudgetOverrun] =
      hv::HmAction::kRestartPartition;

  FaultInjector injector(make_random_plan(seed, kHvPoints));
  hv::Hypervisor hv(config);
  hv.attach_injector(&injector);
  auto stats = hv.run(30'000);
  EXPECT_TRUE(stats.ok()) << stats.status().to_string();
  if (!stats.ok()) return 0;

  std::uint64_t hash = kFnvBasis;
  const hv::RunStats& run = stats.value();
  for (const hv::PartitionStats& partition : run.partitions) {
    // The escalation ladder caps restarts; a partition is never left in an
    // inconsistent state.
    EXPECT_LE(partition.restarts, config.restart_budget);
    EXPECT_TRUE(partition.final_state == hv::PartitionState::kNormal ||
                partition.final_state == hv::PartitionState::kSuspended ||
                partition.final_state == hv::PartitionState::kHalted);
    hash = mix(hash, partition.jobs_completed);
    hash = mix(hash, partition.restarts);
    hash = mix(hash, partition.budget_overruns);
    hash = mix(hash, partition.deadline_misses);
    hash = mix(hash, static_cast<std::uint64_t>(partition.final_state));
  }
  hash = mix(hash, run.hm_log.size());
  for (const hv::HmLogEntry& entry : run.hm_log) {
    hash = mix(hash, entry.when);
    hash = mix(hash, static_cast<std::uint64_t>(entry.event));
    hash = mix(hash, static_cast<std::uint64_t>(entry.action));
  }
  hash = mix(hash, injector.total_fires());
  return hash;
}

TEST(ChaosSoak, HypervisorMissionUnderRandomFaultPlans) {
  for (std::uint64_t seed = 1; seed <= kHvSeeds; ++seed) {
    const std::uint64_t a = run_hv_once(seed);
    const std::uint64_t b = run_hv_once(seed);
    ASSERT_EQ(a, b) << "seed " << seed << " is not deterministic";
    ASSERT_NE(a, 0u);
  }
}

}  // namespace
}  // namespace hermes::fault
