// Cross-subsystem integration scenarios: the system-level behaviours the
// paper motivates but no single module test covers.
#include <gtest/gtest.h>

#include "apps/compress.hpp"
#include "apps/kernels.hpp"
#include "apps/vbn.hpp"
#include "boot/bl.hpp"
#include "common/rng.hpp"
#include "hls/flow.hpp"
#include "hls/testbench.hpp"
#include "hv/hypervisor.hpp"
#include "nxmap/flow.hpp"

namespace hermes {
namespace {

/// "they introduce the possibility of in-flight reconfiguration" (Sec. I):
/// boot with accelerator A in the load list, then upload accelerator B over
/// SpaceWire and reprogram the eFPGA matrix in flight.
TEST(Integration, InFlightReconfiguration) {
  // Two different accelerators -> two different verified bitstreams.
  const nx::NxDevice device = nx::make_device(hls::ng_ultra());
  auto make_bitstream = [&](const char* source, const char* top) {
    hls::FlowOptions options;
    options.top = top;
    auto flow = hls::run_flow(source, options);
    EXPECT_TRUE(flow.ok());
    auto backend = nx::run_backend(flow.value().fsmd.module, device);
    EXPECT_TRUE(backend.ok());
    return backend.value().bitstream;
  };
  const auto bitstream_a =
      make_bitstream("int a1(int x) { return x * 3 + 1; }", "a1");
  const auto bitstream_b = make_bitstream(
      "int a2(int x, int y) { return (x ^ y) + (x & y) * 2; }", "a2");
  ASSERT_NE(bitstream_a, bitstream_b);

  // Boot with accelerator A.
  boot::BootEnvironment env;
  boot::LoadList list;
  boot::LoadEntry bs;
  bs.kind = boot::LoadKind::kBitstream;
  bs.name = "accel_a";
  boot::LoadEntry bl2;
  bl2.kind = boot::LoadKind::kBl2;
  bl2.name = "bl2";
  bl2.dest_addr = boot::MemoryMap::kDdrBase;
  list.entries = {bs, bl2};
  std::vector<std::uint8_t> bl2_image(1024, 0x42);
  boot::stage_boot_media(env, std::vector<std::uint8_t>(4096, 0x11), list,
                         {bitstream_a, bl2_image});
  const boot::BootResult result = boot::run_boot_chain(env);
  ASSERT_TRUE(result.status.ok()) << result.status.to_string();
  ASSERT_TRUE(env.soc.efpga_programmed);
  const unsigned frames_a = env.soc.efpga_frames;

  // In flight: fetch accelerator B over SpaceWire and reprogram.
  env.spacewire.host_object("accel_b", bitstream_b);
  std::uint64_t link_cycles = 0;
  auto fetched = env.spacewire.fetch("accel_b", link_cycles);
  ASSERT_TRUE(fetched.ok());
  ASSERT_TRUE(env.soc.program_efpga(fetched.value()).ok());
  EXPECT_NE(env.soc.efpga_frames, frames_a);

  // A corrupted in-flight update must be rejected, keeping the old config.
  auto corrupted = bitstream_a;
  corrupted[corrupted.size() / 2] ^= 0xFF;
  const unsigned frames_b = env.soc.efpga_frames;
  EXPECT_FALSE(env.soc.program_efpga(corrupted).ok());
  EXPECT_EQ(env.soc.efpga_frames, frames_b) << "failed update must not disturb"
                                               " the active configuration";
}

/// Hybrid CPU-FPGA processing (Sec. I motivation): the VBN partition
/// offloads edge extraction to the Sobel accelerator, then computes the
/// centroid on the edge map — results must agree with the pure-software path.
TEST(Integration, HybridVbnWithSobelAccelerator) {
  constexpr unsigned kW = 16, kH = 16;
  Rng rng(314);
  const apps::VbnFrame frame = apps::render_frame(kW, kH, 9.5, 6.5, 1.8, 8, rng);

  // Software path: centroid on the raw frame.
  const apps::VbnMeasurement sw = apps::measure_centroid(frame, 60);
  ASSERT_TRUE(sw.valid);

  // Hardware path: Sobel on the accelerator, centroid on the edge map.
  const apps::KernelSpec spec = apps::sobel_kernel(kW, kH);
  hls::FlowOptions options;
  options.top = spec.name;
  auto flow = hls::run_flow(spec.source, options);
  ASSERT_TRUE(flow.ok());
  std::vector<std::uint64_t> image(frame.pixels.begin(), frame.pixels.end());
  auto cosim = hls::cosimulate(flow.value(), {}, {{0, image}, {1, {}}});
  ASSERT_TRUE(cosim.ok());
  ASSERT_TRUE(cosim.value().match) << cosim.value().mismatch;

  ir::Interpreter interp(flow.value().function);
  interp.set_memory(0, image);
  ASSERT_TRUE(interp.run({}).ok());
  apps::VbnFrame edges;
  edges.width = kW;
  edges.height = kH;
  for (std::uint64_t pixel : interp.memory(1)) {
    edges.pixels.push_back(static_cast<std::uint8_t>(pixel));
  }
  const apps::VbnMeasurement hw = apps::measure_centroid(edges, 60);
  ASSERT_TRUE(hw.valid);
  // The edge ring is centered on the blob: both estimators agree closely.
  EXPECT_NEAR(hw.x, sw.x, 1.0);
  EXPECT_NEAR(hw.y, sw.y, 1.0);
}

/// Sensor-data downlink (Sec. I motivation: "sensor data to be pre-processed
/// and compressed before transmission"): a producer partition compresses
/// telemetry and ships it through a queuing port; the downlink partition
/// decodes it losslessly.
TEST(Integration, CompressedTelemetryOverPartitionPort) {
  using namespace hermes::hv;
  // Telemetry: a smooth sensor ramp, compressed per 64-sample packet.
  auto telemetry = std::make_shared<std::vector<std::uint16_t>>();
  for (int i = 0; i < 256; ++i) {
    telemetry->push_back(static_cast<std::uint16_t>(3000 + i * 2 + (i % 3)));
  }
  auto received = std::make_shared<std::vector<std::uint16_t>>();
  auto cursor = std::make_shared<std::size_t>(0);

  HvConfig config;
  config.plan.major_frame = 1000;
  config.plan.per_core.assign(kNumCores, {});
  config.plan.per_core[0] = {{0, 400, 0, 0}, {500, 400, 1, 0}};
  PartitionConfig producer;
  producer.name = "sensor";
  producer.region = {0x0000, 0x1000};
  producer.profile = {1000, 0, 100};
  producer.on_job = [telemetry, cursor](PartitionApi& api) {
    if (*cursor + 64 > telemetry->size()) return;
    const std::span<const std::uint16_t> packet(telemetry->data() + *cursor, 64);
    *cursor += 64;
    apps::CompressStats stats;
    const auto encoded = apps::rice_encode(packet, {}, &stats);
    EXPECT_GT(stats.ratio, 1.5) << "smooth telemetry must compress";
    EXPECT_TRUE(api.write_port("tm_src", encoded).ok());
  };
  PartitionConfig downlink;
  downlink.name = "downlink";
  downlink.region = {0x1000, 0x1000};
  downlink.profile = {1000, 0, 100};
  downlink.on_job = [received](PartitionApi& api) {
    auto message = api.read_queue("tm_dst");
    if (!message.ok()) return;
    auto decoded = apps::rice_decode(message.value(), 64, {});
    ASSERT_TRUE(decoded.ok());
    received->insert(received->end(), decoded.value().begin(),
                     decoded.value().end());
  };
  config.partitions = {producer, downlink};
  config.ports = {
      {"tm_src", PortKind::kQueuing, PortDir::kSource, 0, 256, 8, 0},
      {"tm_dst", PortKind::kQueuing, PortDir::kDestination, 1, 256, 8, 0},
  };
  config.channels = {{"tm_src", {"tm_dst"}}};

  Hypervisor hv(config);
  auto stats = hv.run(6'000);
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  // 4 packets produced (256/64); downlink lags one frame.
  ASSERT_GE(received->size(), 3u * 64u);
  for (std::size_t i = 0; i < received->size(); ++i) {
    EXPECT_EQ((*received)[i], (*telemetry)[i]) << "sample " << i;
  }
}

/// Full stack: HLS -> NXmap bitstream -> staged boot media -> BL1 programs
/// the eFPGA and deploys the flight software -> the hypervisor plan starts
/// on the booted SoC (cores released).
TEST(Integration, FullStackBootThenHypervisor) {
  // 1. Synthesize and place/route the accelerator.
  hls::FlowOptions options;
  options.top = "f";
  auto flow = hls::run_flow(
      "int f(int a[8]) { int s = 0; for (int i = 0; i < 8; i = i + 1) "
      "{ s = s + a[i]; } return s; }", options);
  ASSERT_TRUE(flow.ok());
  const nx::NxDevice device = nx::make_device(hls::ng_ultra());
  auto backend = nx::run_backend(flow.value().fsmd.module, device);
  ASSERT_TRUE(backend.ok());

  // 2. Boot.
  boot::BootEnvironment env;
  boot::LoadList list;
  boot::LoadEntry sw;
  sw.kind = boot::LoadKind::kSoftware;
  sw.name = "flightsw";
  sw.dest_addr = boot::MemoryMap::kDdrBase + 0x10000;
  boot::LoadEntry bs;
  bs.kind = boot::LoadKind::kBitstream;
  bs.name = "accel";
  boot::LoadEntry bl2;
  bl2.kind = boot::LoadKind::kBl2;
  bl2.name = "bl2";
  bl2.dest_addr = boot::MemoryMap::kDdrBase;
  list.entries = {sw, bs, bl2};
  boot::stage_boot_media(env, std::vector<std::uint8_t>(8192, 0xB1), list,
                         {std::vector<std::uint8_t>(4096, 0xA0),
                          backend.value().bitstream,
                          std::vector<std::uint8_t>(2048, 0xB2)});
  const boot::BootResult boot_result = boot::run_boot_chain(env);
  ASSERT_TRUE(boot_result.status.ok()) << boot_result.status.to_string();
  ASSERT_EQ(boot_result.reached, boot::BootStage::kApplication);
  ASSERT_EQ(env.soc.cores_released, hv::kNumCores)
      << "BL2 must have released all four R52 cores for the hypervisor";
  ASSERT_TRUE(env.soc.efpga_programmed);

  // 3. The hypervisor plan uses exactly the released cores.
  hv::HvConfig config;
  config.plan.major_frame = 1000;
  config.plan.per_core.assign(env.soc.cores_released, {});
  for (unsigned core = 0; core < env.soc.cores_released; ++core) {
    config.plan.per_core[core] = {{0, 900, 0, core}};
  }
  hv::PartitionConfig app;
  app.name = "flightsw";
  app.region = {0, 0x10000};
  // Demands more than any single core's slot provides: only with all four
  // released cores does the job stream fit its period.
  app.profile = {1000, 0, 3000};
  config.partitions = {app};
  hv::Hypervisor hypervisor(config);
  auto stats = hypervisor.run(5'000);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().partitions[0].deadline_misses, 0u);
  EXPECT_GT(stats.value().core_utilization[3], 0.0)
      << "the fourth core must actually run the partition";
}

}  // namespace
}  // namespace hermes
