// JIT backend unit tests: digest content-addressing, the kernel cache's
// exact stats/eviction behavior, W^X discipline, forced interpreter
// fallback, and directed edge-semantics cases (edge widths, shift counts at
// and beyond the word, division corners) differentially against the
// full-sweep oracle.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "hw/jit/cache.hpp"
#include "hw/jit/exec_memory.hpp"
#include "hw/jit/kernel.hpp"
#include "hw/netlist.hpp"
#include "hw/sim.hpp"
#include "netlist_fuzz.hpp"

namespace hermes::hw {
namespace {

/// Builds the same small datapath every time; `name` must not affect the
/// digest, `tweak` must.
Module make_module(const std::string& name, std::uint64_t tweak = 7) {
  Module m(name);
  const WireId a = m.add_wire(32, "a");
  m.add_input(a, "a");
  const WireId b = m.add_wire(32, "b");
  m.add_input(b, "b");
  const WireId k = m.make_const(tweak, 32);
  const WireId sum = m.make_binop(CellKind::kAdd, a, b, 32);
  const WireId out = m.make_binop(CellKind::kMul, sum, k, 32);
  m.add_output(out, "out");
  return m;
}

TEST(ModuleDigest, StableAcrossRebuildsAndNames) {
  const Module first = make_module("one");
  const Module second = make_module("two");  // names differ, structure equal
  EXPECT_EQ(first.digest(), second.digest());
  EXPECT_EQ(first.digest(), make_module("one").digest());
}

TEST(ModuleDigest, EveryStructuralMutationChangesIt) {
  const std::uint64_t base = make_module("m").digest();
  EXPECT_NE(base, make_module("m", 8).digest());  // const param
  {
    Module m = make_module("m");
    m.add_wire(9, "extra");  // extra wire
    EXPECT_NE(base, m.digest());
  }
  {
    Module m = make_module("m");
    const WireId w = m.add_wire(1, "tap");
    m.add_output(w, "tap");  // extra port
    EXPECT_NE(base, m.digest());
  }
  {
    Module m = make_module("m");
    Memory mem;
    mem.width = 8;
    mem.depth = 4;
    m.add_memory(mem);  // extra memory
    EXPECT_NE(base, m.digest());
  }
}

TEST(ModuleDigest, SingleCellMutationsNeverCollide) {
  // Property test: flip exactly one aspect of one random cell of a random
  // design; the digest must change, and no two mutants may collide with each
  // other (FNV is not cryptographic, but structural edits this small must
  // never alias in practice — the kernel cache would run stale code).
  Rng rng(0xD16E57);
  std::vector<std::uint64_t> seen;
  for (int trial = 0; trial < 40; ++trial) {
    fuzz::RandomDesign design = fuzz::make_random_design(rng, trial, "digest");
    const std::uint64_t base = design.module.digest();
    seen.push_back(base);

    fuzz::mutate_one_cell(rng, design.module);
    const std::uint64_t mutated = design.module.digest();
    EXPECT_NE(base, mutated) << "trial " << trial;
    seen.push_back(mutated);
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    for (std::size_t j = i + 1; j < seen.size(); ++j) {
      ASSERT_NE(seen[i], seen[j]) << "digest collision " << i << "/" << j;
    }
  }
}

class JitEnv : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!jit::jit_available()) {
      GTEST_SKIP() << "JIT unavailable on this host";
    }
    reset_cache();
  }
  void TearDown() override { reset_cache(); }

  static void reset_cache() {
    jit::KernelCache::global().clear();
    jit::KernelCache::global().reset_stats();
    jit::KernelCache::global().set_capacity(jit::KernelCache::kDefaultCapacity);
  }
};

TEST_F(JitEnv, WarmCacheHitSkipsCompilation) {
  const Module m = make_module("warm");
  Simulator cold(m, SimOptions{.backend = SimBackend::kJit});
  ASSERT_EQ(cold.active_backend(), SimBackend::kJit);
  auto stats = jit::KernelCache::global().stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.compiles, 1u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_GT(stats.compile_ns, 0u);

  // Structurally identical module, different name: warm hit, no compile.
  const Module twin = make_module("warm_twin");
  Simulator warm(twin, SimOptions{.backend = SimBackend::kJit});
  ASSERT_EQ(warm.active_backend(), SimBackend::kJit);
  stats = jit::KernelCache::global().stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.compiles, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(jit::KernelCache::global().size(), 1u);
}

TEST_F(JitEnv, DigestChangeForcesRecompile) {
  const Module base = make_module("a");
  const Module tweaked = make_module("a", 9);
  Simulator first(base, SimOptions{.backend = SimBackend::kJit});
  Simulator second(tweaked, SimOptions{.backend = SimBackend::kJit});
  const auto stats = jit::KernelCache::global().stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.compiles, 2u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(jit::KernelCache::global().size(), 2u);
}

TEST_F(JitEnv, EvictionCapIsEnforcedLru) {
  jit::KernelCache::global().set_capacity(2);
  const Module m1 = make_module("e", 1);
  const Module m2 = make_module("e", 2);
  const Module m3 = make_module("e", 3);
  Simulator s1(m1, SimOptions{.backend = SimBackend::kJit});
  Simulator s2(m2, SimOptions{.backend = SimBackend::kJit});
  // Touch kernel 1 so kernel 2 is the LRU victim.
  Simulator s1b(m1, SimOptions{.backend = SimBackend::kJit});
  Simulator s3(m3, SimOptions{.backend = SimBackend::kJit});
  auto stats = jit::KernelCache::global().stats();
  EXPECT_EQ(jit::KernelCache::global().size(), 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.compiles, 3u);
  EXPECT_EQ(stats.hits, 1u);

  // Kernel 1 must still be cached (it was touched); kernel 2 was evicted and
  // recompiles.
  Simulator s1c(m1, SimOptions{.backend = SimBackend::kJit});
  EXPECT_EQ(jit::KernelCache::global().stats().hits, 2u);
  Simulator s2b(m2, SimOptions{.backend = SimBackend::kJit});
  stats = jit::KernelCache::global().stats();
  EXPECT_EQ(stats.compiles, 4u);
  EXPECT_EQ(stats.evictions, 2u);
  // Evicted kernels stay alive while a simulator still runs on them.
  EXPECT_EQ(s3.active_backend(), SimBackend::kJit);
}

TEST_F(JitEnv, DisableEnvForcesSilentFallbackWithIdenticalResults) {
  const Module m = make_module("fallback");
  Simulator native(m, SimOptions{.backend = SimBackend::kJit});
  ASSERT_EQ(native.active_backend(), SimBackend::kJit);
  const auto before = jit::KernelCache::global().stats();

  ::setenv("HERMES_DISABLE_JIT", "1", 1);
  EXPECT_FALSE(jit::jit_available());
  Simulator fallback(m, SimOptions{.backend = SimBackend::kJit});
  // Disabled lookups must not move cache stats at all.
  const auto after = jit::KernelCache::global().stats();
  EXPECT_EQ(before.hits, after.hits);
  EXPECT_EQ(before.misses, after.misses);
  ::unsetenv("HERMES_DISABLE_JIT");
  EXPECT_TRUE(jit::jit_available());

  EXPECT_EQ(fallback.active_backend(), SimBackend::kEvent);
  EXPECT_TRUE(fallback.status().ok());
  for (std::uint64_t a : {0ULL, 1ULL, 0xFFFFFFFFULL, 12345ULL}) {
    native.set_input("a", a);
    native.set_input("b", a * 3 + 1);
    fallback.set_input("a", a);
    fallback.set_input("b", a * 3 + 1);
    native.step();
    fallback.step();
    ASSERT_EQ(native.get_output("out"), fallback.get_output("out"));
  }
}

TEST_F(JitEnv, KernelStatsReflectLoweringWork) {
  // A chain a -> (+k) -> (^k) -> ... has single-consumer intermediates
  // (accumulator forwarding), const operands (folding) and width-64 outputs
  // (mask elision).
  Module m("stats");
  const WireId a = m.add_wire(64, "a");
  m.add_input(a, "a");
  WireId x = a;
  for (int i = 0; i < 8; ++i) {
    x = m.make_binop(i % 2 ? CellKind::kAdd : CellKind::kXor, x,
                     m.make_const(0x9E3779B97F4A7C15ULL + i, 64), 64);
  }
  m.add_output(x, "x");
  // One register whose output feeds one op: a 1-op sequential cone, distinct
  // from the 8-op input-fed chain.
  const WireId q = m.make_register(x, m.make_const(1, 1), 0, "q");
  m.add_output(m.make_not(q), "nq");
  Simulator sim(m, SimOptions{.backend = SimBackend::kJit});
  ASSERT_EQ(sim.active_backend(), SimBackend::kJit);

  // Warm hit: the op-table view is not consulted on the hit path.
  const auto kernel =
      jit::KernelCache::global().get_or_compile(m.digest(), OpTableView{});
  ASSERT_NE(kernel, nullptr);
  const jit::JitKernelStats& stats = kernel->stats();
  EXPECT_GT(stats.code_bytes, 0u);
  EXPECT_GT(stats.levels, 0u);
  EXPECT_GT(stats.ops, 0u);
  EXPECT_GT(stats.folded_consts, 0u);   // the k constants
  EXPECT_GT(stats.fused_forwards, 0u);  // the chain x values
  EXPECT_GT(stats.elided_masks, 0u);    // width-64 outputs
  EXPECT_EQ(stats.seq_ops, 1u);         // only the not(q) follows the register
  EXPECT_GT(stats.compile_ns, 0u);
}

TEST_F(JitEnv, NoWritableExecutablePagesEverMapped) {
  // Compile a kernel, then scan /proc/self/maps: the W^X discipline demands
  // no mapping is simultaneously writable and executable.
  const Module m = make_module("wx");
  Simulator sim(m, SimOptions{.backend = SimBackend::kJit});
  ASSERT_EQ(sim.active_backend(), SimBackend::kJit);
  std::ifstream maps("/proc/self/maps");
  if (!maps.is_open()) GTEST_SKIP() << "/proc/self/maps unavailable";
  std::string line;
  bool saw_exec = false;
  while (std::getline(maps, line)) {
    // Format: address perms offset dev inode path; perms like "r-xp".
    const std::size_t space = line.find(' ');
    ASSERT_NE(space, std::string::npos);
    const std::string perms = line.substr(space + 1, 4);
    ASSERT_GE(perms.size(), 3u);
    if (perms[2] == 'x') {
      saw_exec = true;
      EXPECT_NE(perms[1], 'w') << "RWX mapping: " << line;
    }
  }
  EXPECT_TRUE(saw_exec);  // the kernel's RX pages must be present
}

TEST(JitExecMemory, LifecycleEnforcesWThenX) {
  if (!jit::jit_available()) GTEST_SKIP();
  jit::ExecMemory memory;
  EXPECT_EQ(memory.entry(0), nullptr);
  ASSERT_TRUE(memory.allocate(64));
  ASSERT_NE(memory.data(), nullptr);
  EXPECT_EQ(memory.entry(0), nullptr);  // not executable yet
  memory.data()[0] = 0xC3;              // ret
  ASSERT_TRUE(memory.finalize());
  EXPECT_EQ(memory.data(), nullptr);    // no longer writable
  ASSERT_NE(memory.entry(0), nullptr);
  reinterpret_cast<void (*)()>(const_cast<void*>(memory.entry(0)))();
  EXPECT_FALSE(memory.finalize());      // double finalize rejected
}

/// Differential check of one module over given input vectors: the JIT result
/// must equal the full-sweep oracle on every wire.
void expect_jit_matches_sweep(
    const Module& m, const std::vector<std::string>& ports,
    const std::vector<std::vector<std::uint64_t>>& vectors) {
  Simulator sweep(m, SimOptions{.backend = SimBackend::kSweep});
  Simulator jit(m, SimOptions{.backend = SimBackend::kJit});
  ASSERT_TRUE(sweep.status().ok());
  ASSERT_TRUE(jit.status().ok());
  ASSERT_EQ(jit.active_backend(), SimBackend::kJit);
  for (const auto& vec : vectors) {
    ASSERT_EQ(vec.size(), ports.size());
    for (std::size_t i = 0; i < ports.size(); ++i) {
      sweep.set_input(ports[i], vec[i]);
      jit.set_input(ports[i], vec[i]);
    }
    sweep.eval_comb();
    jit.eval_comb();
    for (WireId w = 0; w < m.wire_count(); ++w) {
      ASSERT_EQ(sweep.get(w), jit.get(w))
          << "wire " << m.wire_name(w) << " (" << w << ") width "
          << m.wire_width(w) << " inputs " << vec[0] << "," << vec[1] << ","
          << vec[2];
    }
  }
}

TEST(JitDirected, EdgeWidthOperatorSemantics) {
  if (!jit::jit_available()) GTEST_SKIP();
  static const CellKind kBinops[] = {
      CellKind::kAdd,  CellKind::kSub,  CellKind::kMul,  CellKind::kDivU,
      CellKind::kDivS, CellKind::kRemU, CellKind::kRemS, CellKind::kAnd,
      CellKind::kOr,   CellKind::kXor,  CellKind::kEq,   CellKind::kNe,
      CellKind::kLtU,  CellKind::kLtS,  CellKind::kLeU,  CellKind::kLeS};

  for (unsigned width : {1u, 2u, 31u, 32u, 33u, 63u, 64u}) {
    Module m("w" + std::to_string(width));
    const WireId a = m.add_wire(width, "a");
    m.add_input(a, "a");
    const WireId b = m.add_wire(width, "b");
    m.add_input(b, "b");
    const WireId c = m.add_wire(8, "c");  // shift count, can exceed 64
    m.add_input(c, "c");
    for (CellKind kind : kBinops) {
      m.make_binop(kind, a, b, width);
      m.make_binop(kind, a, b, 1);   // truncating output
      m.make_binop(kind, a, b, 64);  // widening output
    }
    for (CellKind kind : {CellKind::kShl, CellKind::kShrU, CellKind::kShrS}) {
      m.make_binop(kind, a, c, width);
      m.make_binop(kind, a, c, 64);
    }
    m.make_not(a);
    m.make_zext(a, 64);
    m.make_sext(a, 64);
    if (width > 1) {
      m.make_zext(a, width - 1);  // truncating "extension"
      m.make_sext(a, width - 1);
      m.make_slice(a, width / 2, (width + 1) / 2);
      m.make_concat({m.make_slice(a, 1, width - 1), m.make_const(1, 1)});
    }
    ASSERT_TRUE(m.validate().ok()) << "width " << width;

    const std::uint64_t mask = bit_mask(width);
    const std::uint64_t sign = 1ULL << (width - 1);
    const std::vector<std::uint64_t> corners = {
        0, 1, 2, mask, mask - 1, sign, sign - 1, 0x5A5A5A5A5A5A5A5AULL & mask};
    const std::vector<std::uint64_t> counts = {
        0, 1, width - 1, width, 63, 64, 65, 255};
    std::vector<std::vector<std::uint64_t>> vectors;
    for (std::uint64_t va : corners) {
      for (std::uint64_t vb : corners) {
        for (std::uint64_t vc : counts) {
          vectors.push_back({va, vb, vc});
        }
      }
    }
    expect_jit_matches_sweep(m, {"a", "b", "c"}, vectors);
  }
}

TEST(JitDirected, SignedDivisionOverflowCorner) {
  if (!jit::jit_available()) GTEST_SKIP();
  // INT64_MIN / -1 overflows int64 (a #DE fault on raw idiv): the netlist
  // semantics wrap to INT64_MIN, and the remainder is 0. Also covers the
  // divide-by-zero totals at width 64.
  Module m("divcorner");
  const WireId a = m.add_wire(64, "a");
  m.add_input(a, "a");
  const WireId b = m.add_wire(64, "b");
  m.add_input(b, "b");
  const WireId divs = m.make_binop(CellKind::kDivS, a, b, 64, "divs");
  const WireId rems = m.make_binop(CellKind::kRemS, a, b, 64, "rems");
  const WireId divu = m.make_binop(CellKind::kDivU, a, b, 64, "divu");
  const WireId remu = m.make_binop(CellKind::kRemU, a, b, 64, "remu");

  Simulator jit(m, SimOptions{.backend = SimBackend::kJit});
  ASSERT_EQ(jit.active_backend(), SimBackend::kJit);
  const std::uint64_t int64_min = 1ULL << 63;
  jit.set_input("a", int64_min);
  jit.set_input("b", ~0ULL);  // -1
  jit.eval_comb();
  EXPECT_EQ(jit.get(divs), int64_min);  // INT64_MIN / -1 wraps
  EXPECT_EQ(jit.get(rems), 0u);
  jit.set_input("b", 0);
  jit.eval_comb();
  EXPECT_EQ(jit.get(divs), ~0ULL);      // divide by zero -> all ones
  EXPECT_EQ(jit.get(rems), int64_min);  // remainder by zero -> dividend
  EXPECT_EQ(jit.get(divu), ~0ULL);
  EXPECT_EQ(jit.get(remu), int64_min);
}

TEST(JitDirected, RamSameCycleReadWriteCollision) {
  if (!jit::jit_available()) GTEST_SKIP();
  // Synchronous read and write of the same word in the same cycle: RAM
  // ports are write-first (sim.cpp commit order, modelling NG-ULTRA TDP RAM
  // inference), so the read returns the newly written data on every backend.
  for (SimBackend backend : {SimBackend::kSweep, SimBackend::kJit}) {
    Module m("ramcol");
    Memory mem;
    mem.name = "m0";
    mem.width = 16;
    mem.depth = 8;
    mem.init = {100, 101, 102, 103, 104, 105, 106, 107};
    const std::size_t mi = m.add_memory(mem);
    const WireId addr = m.add_wire(3, "addr");
    m.add_input(addr, "addr");
    const WireId data = m.add_wire(16, "data");
    m.add_input(data, "data");
    const WireId one = m.make_const(1, 1);
    const WireId rdata = m.make_ram_read(mi, addr, one, "rdata");
    m.make_ram_write(mi, addr, data, one);
    m.add_output(rdata, "rdata");
    ASSERT_TRUE(m.validate().ok());

    Simulator sim(m, SimOptions{.backend = backend});
    ASSERT_TRUE(sim.status().ok());
    sim.set_input("addr", 3);
    sim.set_input("data", 7777);
    sim.step();  // write-first: the colliding read sees the new data
    EXPECT_EQ(sim.get_output("rdata"), 7777u) << to_string(backend);
    EXPECT_EQ(sim.read_memory(0, 3), 7777u) << to_string(backend);
    sim.set_input("data", 4242);
    sim.step();
    EXPECT_EQ(sim.get_output("rdata"), 4242u) << to_string(backend);
    EXPECT_EQ(sim.read_memory(0, 3), 4242u) << to_string(backend);
  }
}

}  // namespace
}  // namespace hermes::hw
