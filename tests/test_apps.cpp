// Tests for the use-case applications: every HLS kernel is synthesized and
// co-simulated against the golden model over random inputs; the control
// workloads (AOCS / VBN / EOR) and the compression pipeline are validated
// functionally.
#include <gtest/gtest.h>

#include "apps/aocs.hpp"
#include "apps/ccsds.hpp"
#include "apps/compress.hpp"
#include "apps/eor.hpp"
#include "apps/fixmath.hpp"
#include "apps/kernels.hpp"
#include "apps/vbn.hpp"
#include "common/rng.hpp"
#include "hls/flow.hpp"
#include "hls/testbench.hpp"

namespace hermes::apps {
namespace {

// ---- HLS kernels, parameterized over the whole catalog ----

class KernelCosim : public ::testing::TestWithParam<KernelSpec> {};

TEST_P(KernelCosim, HardwareMatchesGolden) {
  const KernelSpec& spec = GetParam();
  hls::FlowOptions options;
  options.top = spec.name;
  auto flow = hls::run_flow(spec.source, options);
  ASSERT_TRUE(flow.ok()) << spec.name << ": " << flow.status().to_string();

  Rng rng(0xC0DE + spec.name.size());
  // Random contents for every interface memory.
  std::map<std::size_t, std::vector<std::uint64_t>> images;
  for (std::size_t m = 0; m < flow.value().function.memories().size(); ++m) {
    const ir::MemDecl& mem = flow.value().function.memories()[m];
    if (!mem.is_interface) continue;
    std::vector<std::uint64_t> image(mem.depth);
    for (auto& word : image) word = rng.next_u64();
    images[m] = std::move(image);
  }
  auto result = cosimulate(flow.value(), {}, images, 10'000'000);
  ASSERT_TRUE(result.ok()) << spec.name << ": " << result.status().to_string();
  EXPECT_TRUE(result.value().match) << spec.name << ": "
                                    << result.value().mismatch;
  EXPECT_GT(result.value().hw_cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(Catalog, KernelCosim,
                         ::testing::ValuesIn(all_kernels()),
                         [](const ::testing::TestParamInfo<KernelSpec>& info) {
                           return info.param.name;
                         });

TEST(Kernels, SobelDetectsEdge) {
  // A vertical step edge must produce strong responses along the boundary.
  const KernelSpec spec = sobel_kernel(16, 16);
  hls::FlowOptions options;
  options.top = spec.name;
  auto flow = hls::run_flow(spec.source, options);
  ASSERT_TRUE(flow.ok());
  std::vector<std::uint64_t> image(256, 0);
  for (unsigned y = 0; y < 16; ++y) {
    for (unsigned x = 8; x < 16; ++x) image[y * 16 + x] = 200;
  }
  auto result = cosimulate(flow.value(), {}, {{0, image}, {1, {}}});
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.value().match) << result.value().mismatch;
  // Inspect the golden output via a fresh interpreter run.
  ir::Interpreter interp(flow.value().function);
  interp.set_memory(0, image);
  ASSERT_TRUE(interp.run({}).ok());
  const auto& out = interp.memory(1);
  EXPECT_GT(out[5 * 16 + 8], 200u);  // on the edge: saturated response
  EXPECT_EQ(out[5 * 16 + 3], 0u);    // flat region: zero response
}

// ---- fixed-point math ----

TEST(FixMath, Conversions) {
  EXPECT_EQ(fx_to_int(fx_from_int(42)), 42);
  EXPECT_EQ(fx_from_milli(1500), 3 * kFxOne / 2);
  EXPECT_NEAR(fx_to_double(fx_from_milli(250)), 0.25, 1e-4);
}

TEST(FixMath, MulDiv) {
  const Fx a = fx_from_milli(2500);  // 2.5
  const Fx b = fx_from_milli(4000);  // 4.0
  EXPECT_NEAR(fx_to_double(fx_mul(a, b)), 10.0, 1e-3);
  EXPECT_NEAR(fx_to_double(fx_div(b, a)), 1.6, 1e-3);
  EXPECT_EQ(fx_div(a, 0), 0);  // defined behaviour
}

TEST(FixMath, Sqrt) {
  EXPECT_NEAR(fx_to_double(fx_sqrt(fx_from_int(16))), 4.0, 1e-3);
  EXPECT_NEAR(fx_to_double(fx_sqrt(fx_from_milli(250))), 0.5, 1e-3);
  EXPECT_EQ(fx_sqrt(0), 0);
  EXPECT_EQ(fx_sqrt(-5), 0);
}

TEST(FixMath, SinCos) {
  EXPECT_NEAR(fx_to_double(fx_sin(0)), 0.0, 5e-3);
  EXPECT_NEAR(fx_to_double(fx_sin(kFxPi / 2)), 1.0, 5e-3);
  EXPECT_NEAR(fx_to_double(fx_sin(-kFxPi / 2)), -1.0, 5e-3);
  EXPECT_NEAR(fx_to_double(fx_cos(0)), 1.0, 5e-3);
  EXPECT_NEAR(fx_to_double(fx_sin(kFxPi / 6)), 0.5, 5e-3);
}

// ---- AOCS ----

TEST(Aocs, ConvergesFromInitialError) {
  AocsState state;
  state.attitude_error = {fx_from_milli(200), fx_from_milli(-150),
                          fx_from_milli(100)};
  const AocsConfig config;
  const Fx initial = fx_from_milli(200);
  const Fx final_error = aocs_run(state, config, 600);  // 60 s at 10 Hz
  EXPECT_LT(final_error, initial / 4)
      << "PD controller must reduce the attitude error";
  EXPECT_EQ(state.steps, 600u);
}

TEST(Aocs, TorqueSaturates) {
  AocsState state;
  state.attitude_error = {fx_from_int(10), 0, 0};  // huge error
  AocsConfig config;
  aocs_step(state, config);
  EXPECT_EQ(fx_abs(state.torque_cmd[0]), config.max_torque);
}

TEST(Aocs, Deterministic) {
  AocsState a, b;
  a.attitude_error = b.attitude_error = {fx_from_milli(123), 0, 0};
  const AocsConfig config;
  aocs_run(a, config, 100);
  aocs_run(b, config, 100);
  EXPECT_EQ(a.attitude_error, b.attitude_error);
  EXPECT_EQ(a.rate, b.rate);
}

// ---- VBN ----

TEST(Vbn, CentroidAccuracyOnCleanFrame) {
  Rng rng(5);
  const VbnFrame frame = render_frame(32, 32, 20.5, 11.5, 2.0, 0, rng);
  const VbnMeasurement m = measure_centroid(frame, 30);
  ASSERT_TRUE(m.valid);
  EXPECT_NEAR(m.x, 20.5, 0.5);
  EXPECT_NEAR(m.y, 11.5, 0.5);
}

TEST(Vbn, NoisyFrameStillTracks) {
  Rng rng(6);
  const VbnFrame frame = render_frame(32, 32, 8.0, 24.0, 2.5, 25, rng);
  const VbnMeasurement m = measure_centroid(frame, 60);
  ASSERT_TRUE(m.valid);
  EXPECT_NEAR(m.x, 8.0, 1.5);
  EXPECT_NEAR(m.y, 24.0, 1.5);
}

TEST(Vbn, EmptyFrameInvalid) {
  Rng rng(7);
  const VbnFrame frame = render_frame(32, 32, 16, 16, 2.0, 0, rng);
  const VbnMeasurement m = measure_centroid(frame, 250);  // threshold too high
  EXPECT_FALSE(m.valid);
}

// ---- EOR ----

TEST(Eor, RaisesOrbitToGeo) {
  EorState state;
  const EorConfig config;
  const double initial_dv = eor_remaining_dv(state, config);
  EXPECT_GT(initial_dv, 0.5);  // ~0.9 km/s from 24500 km
  unsigned guard = 0;
  while (!state.on_station && guard++ < 100'000) {
    eor_step(state, config);
  }
  EXPECT_TRUE(state.on_station);
  EXPECT_NEAR(state.sma_km, config.target_sma_km, 1.0);
  EXPECT_NEAR(state.delta_v_used, initial_dv, 0.01);
  EXPECT_GT(state.arcs, 100u);  // low thrust: many arcs
}

TEST(Eor, MonotonicRaise) {
  EorState state;
  const EorConfig config;
  double previous = state.sma_km;
  for (int i = 0; i < 50; ++i) {
    eor_step(state, config);
    EXPECT_GE(state.sma_km, previous);
    previous = state.sma_km;
  }
}

// ---- Rice compression ----

class RiceRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RiceRoundTrip, LosslessOnWaveforms) {
  Rng rng(GetParam());
  std::vector<std::uint16_t> samples(512);
  switch (GetParam() % 4) {
    case 0:  // smooth ramp + noise (typical sensor)
      for (std::size_t i = 0; i < samples.size(); ++i) {
        samples[i] = static_cast<std::uint16_t>(1000 + i * 3 + rng.next_below(5));
      }
      break;
    case 1:  // constant
      for (auto& s : samples) s = 0x1234;
      break;
    case 2:  // white noise (worst case)
      for (auto& s : samples) s = static_cast<std::uint16_t>(rng.next_u64());
      break;
    case 3:  // sine-like
      for (std::size_t i = 0; i < samples.size(); ++i) {
        samples[i] = static_cast<std::uint16_t>(
            2048 + fx_to_int(fx_mul(fx_from_int(1000),
                                    fx_sin(static_cast<Fx>(i) * kFxPi / 64))));
      }
      break;
  }
  const RiceConfig config;
  CompressStats stats;
  const auto encoded = rice_encode(samples, config, &stats);
  auto decoded = rice_decode(encoded, samples.size(), config);
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value(), samples);
  EXPECT_EQ(stats.input_bits, samples.size() * 16);
}

INSTANTIATE_TEST_SUITE_P(Waveforms, RiceRoundTrip, ::testing::Range(0, 8));

TEST(Rice, CompressesSmoothData) {
  std::vector<std::uint16_t> samples(1024);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i] = static_cast<std::uint16_t>(5000 + (i % 7));
  }
  CompressStats stats;
  rice_encode(samples, {}, &stats);
  EXPECT_GT(stats.ratio, 3.0) << "smooth sensor data must compress well";
}

TEST(Rice, DetectsTruncatedStream) {
  std::vector<std::uint16_t> samples(64, 42);
  auto encoded = rice_encode(samples, {});
  encoded.resize(encoded.size() / 4);
  EXPECT_FALSE(rice_decode(encoded, samples.size(), {}).ok());
}

}  // namespace
}  // namespace hermes::apps

// CCSDS TM framing tests appended as a separate suite.
namespace hermes::apps {
namespace {

TEST(CcsdsTm, FrameStreamRoundTrip) {
  Rng rng(2121);
  std::vector<std::uint8_t> payload(1000);
  for (auto& byte : payload) byte = static_cast<std::uint8_t>(rng.next_u64());
  TmFrameConfig config;
  std::uint8_t master = 0, vc = 0;
  const auto frames = tm_frame_stream(payload, config, master, vc);
  // 248 data bytes per 256-byte frame -> ceil(1000/248) = 5 frames.
  EXPECT_EQ(frames.size(), 5u);
  for (const auto& frame : frames) EXPECT_EQ(frame.size(), 256u);
  auto decoded = tm_decode_stream(frames, config);
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  ASSERT_GE(decoded.value().size(), payload.size());
  for (std::size_t i = 0; i < payload.size(); ++i) {
    EXPECT_EQ(decoded.value()[i], payload[i]) << i;
  }
  // Padding is the idle pattern.
  EXPECT_EQ(decoded.value().back(), 0x55);
}

TEST(CcsdsTm, HeaderFields) {
  TmFrameConfig config;
  config.spacecraft_id = 0x2C5;
  config.virtual_channel = 5;
  std::uint8_t master = 10, vc = 3;
  const std::uint8_t payload[4] = {1, 2, 3, 4};
  const auto frames = tm_frame_stream(payload, config, master, vc);
  ASSERT_EQ(frames.size(), 1u);
  auto info = tm_decode_frame(frames[0], config);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().spacecraft_id, 0x2C5);
  EXPECT_EQ(info.value().virtual_channel, 5);
  EXPECT_EQ(info.value().master_count, 10);
  EXPECT_EQ(info.value().vc_count, 3);
  EXPECT_EQ(master, 11);  // counters advanced
  EXPECT_EQ(vc, 4);
}

TEST(CcsdsTm, FecfDetectsCorruption) {
  TmFrameConfig config;
  std::uint8_t master = 0, vc = 0;
  const std::uint8_t payload[16] = {0};
  auto frames = tm_frame_stream(payload, config, master, vc);
  Rng rng(5);
  for (int trial = 0; trial < 40; ++trial) {
    auto corrupted = frames[0];
    corrupted[rng.next_below(corrupted.size())] ^=
        static_cast<std::uint8_t>(1u << rng.next_below(8));
    EXPECT_FALSE(tm_decode_frame(corrupted, config).ok()) << trial;
  }
}

TEST(CcsdsTm, CounterGapDetectsFrameLoss) {
  TmFrameConfig config;
  std::uint8_t master = 0, vc = 0;
  std::vector<std::uint8_t> payload(600, 0xAB);
  auto frames = tm_frame_stream(payload, config, master, vc);
  ASSERT_GE(frames.size(), 3u);
  frames.erase(frames.begin() + 1);  // drop the middle frame
  const auto decoded = tm_decode_stream(frames, config);
  EXPECT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("frame loss"), std::string::npos);
}

TEST(CcsdsTm, CountersWrapAt256) {
  TmFrameConfig config;
  std::uint8_t master = 254, vc = 254;
  std::vector<std::uint8_t> payload(700, 1);  // 3 frames: 254, 255, 0
  const auto frames = tm_frame_stream(payload, config, master, vc);
  ASSERT_EQ(frames.size(), 3u);
  auto decoded = tm_decode_stream(frames, config);
  EXPECT_TRUE(decoded.ok()) << "wraparound must not look like frame loss";
  EXPECT_EQ(vc, 1);
}

TEST(CcsdsTm, EndToEndCompressedDownlink) {
  // Sensor samples -> Rice compression -> TM frames -> decode -> decompress:
  // the full Sec.-I preprocessing/downlink pipeline, bit-exact.
  std::vector<std::uint16_t> samples(512);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i] = static_cast<std::uint16_t>(8000 + (i * 7) % 23);
  }
  CompressStats stats;
  const auto compressed = rice_encode(samples, {}, &stats);
  EXPECT_GT(stats.ratio, 2.0);

  TmFrameConfig config;
  std::uint8_t master = 0, vc = 0;
  const auto frames = tm_frame_stream(compressed, config, master, vc);
  auto downlinked = tm_decode_stream(frames, config);
  ASSERT_TRUE(downlinked.ok());
  downlinked.value().resize(compressed.size());  // strip idle padding
  auto restored = rice_decode(downlinked.value(), samples.size(), {});
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value(), samples);
}

}  // namespace
}  // namespace hermes::apps
