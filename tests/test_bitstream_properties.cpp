// Property tests for the bitstream wire format: the integrity argument of
// the eFPGA programming path rests on "any corrupted image is rejected
// before programming", so this file checks it exhaustively — every single
// bit of a packed image flipped one at a time (header, payloads, frame
// CRCs, global CRC), truncation at every byte boundary, and magic
// mismatches — across tile-column counts 1..4.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "nxmap/bitstream.hpp"

namespace hermes::nx {
namespace {

// Deterministic synthetic image with `columns` frames of varying sizes,
// built through the same low-level packer BL1's input comes from.
std::vector<BitstreamFrame> synthetic_frames(unsigned columns) {
  std::vector<BitstreamFrame> frames;
  for (unsigned c = 0; c < columns; ++c) {
    BitstreamFrame frame;
    frame.column = 3 * c + 1;  // sparse column ids, like a real placement
    const std::size_t words = 2 + (c * 3) % 5;
    for (std::size_t w = 0; w < words; ++w) {
      frame.words.push_back(
          static_cast<std::uint32_t>((w + 1) * 2654435761u ^ (c << 16)));
    }
    frames.push_back(std::move(frame));
  }
  return frames;
}

std::vector<std::uint8_t> synthetic_image(unsigned columns) {
  return pack_raw_bitstream(/*device_id=*/0x30301u, synthetic_frames(columns));
}

TEST(BitstreamProperties, RoundTripThroughParse) {
  for (unsigned columns = 1; columns <= 4; ++columns) {
    const std::vector<BitstreamFrame> frames = synthetic_frames(columns);
    const std::vector<std::uint8_t> image = synthetic_image(columns);

    auto info = verify_bitstream(image);
    ASSERT_TRUE(info.ok()) << info.status().to_string();
    EXPECT_EQ(info.value().device_id, 0x30301u);
    EXPECT_EQ(info.value().frames, columns);
    EXPECT_EQ(info.value().bytes, image.size());

    auto parsed = parse_bitstream(image);
    ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
    ASSERT_EQ(parsed.value().frames.size(), columns);
    for (unsigned c = 0; c < columns; ++c) {
      const BitstreamFrame& got = parsed.value().frames[c];
      EXPECT_EQ(got.column, frames[c].column);
      EXPECT_EQ(got.words, frames[c].words);
      EXPECT_EQ(got.crc, frame_crc(got.column, got.words));
      // The frame's offset/bytes must address exactly its image slice.
      EXPECT_GE(got.offset, kBitstreamHeaderBytes);
      EXPECT_LE(got.offset + got.bytes, image.size());
      EXPECT_EQ(got.bytes, 8 + 4 * got.words.size() + 4);
    }
  }
}

TEST(BitstreamProperties, EverySingleBitFlipIsRejected) {
  for (unsigned columns = 1; columns <= 4; ++columns) {
    std::vector<std::uint8_t> image = synthetic_image(columns);
    for (std::size_t byte = 0; byte < image.size(); ++byte) {
      for (unsigned bit = 0; bit < 8; ++bit) {
        image[byte] ^= static_cast<std::uint8_t>(1u << bit);
        auto info = verify_bitstream(image);
        EXPECT_FALSE(info.ok())
            << "flip accepted at byte " << byte << " bit " << bit << " of a "
            << columns << "-column image";
        // parse_bitstream must never hand out frames from a corrupt image.
        EXPECT_FALSE(parse_bitstream(image).ok());
        image[byte] ^= static_cast<std::uint8_t>(1u << bit);
      }
    }
    ASSERT_TRUE(verify_bitstream(image).ok()) << "restore failed";
  }
}

TEST(BitstreamProperties, EveryTruncationIsRejected) {
  for (unsigned columns = 1; columns <= 4; ++columns) {
    const std::vector<std::uint8_t> image = synthetic_image(columns);
    for (std::size_t len = 0; len < image.size(); ++len) {
      const std::span<const std::uint8_t> prefix(image.data(), len);
      EXPECT_FALSE(verify_bitstream(prefix).ok())
          << "truncation to " << len << " of " << image.size()
          << " bytes accepted";
      EXPECT_FALSE(parse_bitstream(prefix).ok());
    }
  }
}

TEST(BitstreamProperties, MagicMismatchIsRejected) {
  std::vector<std::uint8_t> image = synthetic_image(2);
  // Any wrong magic word — not just single-bit-adjacent ones — must fail.
  const std::uint32_t wrong[] = {0, ~kBitstreamMagic, kBitstreamMagic + 1,
                                 0x4E583032u /* "NX02" */};
  for (std::uint32_t value : wrong) {
    for (unsigned b = 0; b < 4; ++b) {
      image[b] = static_cast<std::uint8_t>(value >> (8 * b));
    }
    EXPECT_FALSE(verify_bitstream(image).ok());
  }
}

TEST(BitstreamProperties, EmptyFrameListStillVerifies) {
  // A header-only image (no frames) is well-formed; programming it is a
  // policy question for the caller, but the format round-trips.
  const std::vector<std::uint8_t> image = pack_raw_bitstream(0x1234, {});
  auto info = verify_bitstream(image);
  ASSERT_TRUE(info.ok()) << info.status().to_string();
  EXPECT_EQ(info.value().frames, 0u);
  auto parsed = parse_bitstream(image);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().frames.empty());
  EXPECT_EQ(parsed.value().total_words(), 0u);
}

}  // namespace
}  // namespace hermes::nx
